// Dense per-peer state arenas.
//
// Peers are numbered 0..N-1, so per-peer protocol state never needs a hash
// map: a dense arena indexed by the compact peer index is smaller, faster to
// iterate in the round loop, and — critically for the sharded engine
// (net/engine.h) — safe to mutate from concurrent shards as long as each
// shard only touches the slots of the peers it owns. That last property is
// why `PeerArena<bool>` stores one byte per peer instead of delegating to
// std::vector<bool>: bit-packed slots share bytes across peers, and two
// shards flipping neighboring bits is a data race.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "common/ids.h"

namespace nf {

/// Dense storage with one slot per peer, indexed by PeerId or raw index.
///
/// Sharding contract: distinct slots are independent objects, so concurrent
/// writers that partition the peer space (one writer per slot) need no
/// synchronization. Resizing or assigning the arena while shards run is not
/// allowed — size it before handing it to the engine.
template <typename T>
class PeerArena {
  // One byte per peer for bool: vector<bool> packs eight peers per byte,
  // which breaks the disjoint-slot concurrency contract above.
  using Slot = std::conditional_t<std::is_same_v<T, bool>, std::uint8_t, T>;

 public:
  using value_type = Slot;

  PeerArena() = default;
  explicit PeerArena(std::uint32_t num_peers) : slots_(num_peers) {}
  PeerArena(std::uint32_t num_peers, const T& init)
      : slots_(num_peers, static_cast<Slot>(init)) {}
  /// Adopts existing dense storage (one element per peer).
  explicit PeerArena(std::vector<Slot> slots) : slots_(std::move(slots)) {}

  [[nodiscard]] Slot& operator[](PeerId p) { return at(p.value()); }
  [[nodiscard]] const Slot& operator[](PeerId p) const {
    return at(p.value());
  }
  [[nodiscard]] Slot& operator[](std::uint32_t i) { return at(i); }
  [[nodiscard]] const Slot& operator[](std::uint32_t i) const {
    return at(i);
  }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] bool empty() const { return slots_.empty(); }

  void assign(std::uint32_t num_peers, const T& init) {
    slots_.assign(num_peers, static_cast<Slot>(init));
  }
  void resize(std::uint32_t num_peers) { slots_.resize(num_peers); }

  [[nodiscard]] auto begin() { return slots_.begin(); }
  [[nodiscard]] auto end() { return slots_.end(); }
  [[nodiscard]] auto begin() const { return slots_.begin(); }
  [[nodiscard]] auto end() const { return slots_.end(); }
  [[nodiscard]] Slot* data() { return slots_.data(); }
  [[nodiscard]] const Slot* data() const { return slots_.data(); }

 private:
  [[nodiscard]] Slot& at(std::uint32_t i) {
    ensure(i < slots_.size(), "peer index out of arena range");
    return slots_[i];
  }
  [[nodiscard]] const Slot& at(std::uint32_t i) const {
    ensure(i < slots_.size(), "peer index out of arena range");
    return slots_[i];
  }

  std::vector<Slot> slots_;
};

/// Dense per-peer rows of a fixed width in one contiguous buffer — the
/// structure-of-arrays layout for per-peer vectors (e.g. the f×g group sums
/// of a netFilter filtering pass). Rows are peer-major: a convergecast
/// merge is a contiguous, SIMD-friendly column add into the parent's row,
/// and the sharding contract holds because distinct peers own disjoint
/// row spans (DESIGN.md §6f).
template <typename T>
class PeerRowArena {
  static_assert(std::is_trivially_copyable_v<T>,
                "rows are raw spans; slot types must be trivially copyable");

 public:
  PeerRowArena() = default;

  /// (Re)shape to num_peers × width, filling every slot with `init`.
  /// Capacity is kept across assigns, so re-running a warmed phase does not
  /// reallocate.
  void assign(std::uint32_t num_peers, std::uint32_t width, const T& init) {
    width_ = width;
    slots_.assign(std::size_t{num_peers} * width, init);
  }

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t num_rows() const {
    return width_ == 0 ? 0
                       : static_cast<std::uint32_t>(slots_.size() / width_);
  }
  [[nodiscard]] bool empty() const { return slots_.empty(); }

  [[nodiscard]] std::span<T> row(PeerId p) { return row(p.value()); }
  [[nodiscard]] std::span<const T> row(PeerId p) const {
    return row(p.value());
  }
  [[nodiscard]] std::span<T> row(std::uint32_t i) {
    ensure(std::size_t{i} * width_ + width_ <= slots_.size(),
           "peer index out of row-arena range");
    return {slots_.data() + std::size_t{i} * width_, width_};
  }
  [[nodiscard]] std::span<const T> row(std::uint32_t i) const {
    ensure(std::size_t{i} * width_ + width_ <= slots_.size(),
           "peer index out of row-arena range");
    return {slots_.data() + std::size_t{i} * width_, width_};
  }

 private:
  std::vector<T> slots_;
  std::uint32_t width_ = 0;
};

/// Contiguous column add: acc[i] += src[i] for i < n. The restrict
/// qualification promises the compiler the two columns never alias —
/// true for PeerRowArena rows, which are disjoint by construction — so
/// it can emit wide vector adds instead of scalar load/add/store chains.
/// This is the merge kernel of every aggregate convergecast.
inline void add_columns(std::uint64_t* __restrict acc,
                        const std::uint64_t* __restrict src,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
}

}  // namespace nf
