// Flat sorted map from an id type to an accumulated value.
//
// The inner loop of every aggregation path in netFilter is "merge my
// <id, value> pairs with my children's and add values for equal ids". A
// sorted vector with a two-pointer merge is both faster and far more
// memory-frugal than a node-based map at the sizes the simulator reaches
// (10^7 instances across 10^3 peers), and it gives deterministic iteration
// order for free — which keeps runs bit-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"

namespace nf {

template <typename Id, typename Value = std::uint64_t>
class ValueMap {
 public:
  using value_type = std::pair<Id, Value>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  ValueMap() = default;

  /// Builds from unsorted pairs, combining duplicates by summing.
  static ValueMap from_unsorted(std::vector<value_type> pairs) {
    std::sort(pairs.begin(), pairs.end(),
              [](const value_type& a, const value_type& b) {
                return a.first < b.first;
              });
    ValueMap out;
    out.entries_.reserve(pairs.size());
    for (const auto& [id, v] : pairs) {
      if (!out.entries_.empty() && out.entries_.back().first == id) {
        out.entries_.back().second += v;
      } else {
        out.entries_.emplace_back(id, v);
      }
    }
    return out;
  }

  /// Builds from pairs already sorted by id with no duplicates — e.g. the
  /// arena-backed Phase-2 candidate rows, which are written in the sorted
  /// order of the source map they filter. Skips the sort entirely.
  static ValueMap from_sorted(std::span<const value_type> pairs) {
    ValueMap out;
    out.entries_.assign(pairs.begin(), pairs.end());
    ensure(std::is_sorted(out.entries_.begin(), out.entries_.end(),
                          [](const value_type& a, const value_type& b) {
                            return a.first < b.first;
                          }),
           "from_sorted input must be sorted by id");
    return out;
  }

  /// Adds `v` to the value of `id` (inserting if absent). O(log n) lookup,
  /// O(n) insert; use `from_unsorted` or `merge_add` for bulk building.
  void add(Id id, Value v) {
    auto it = lower_bound(id);
    if (it != entries_.end() && it->first == id) {
      it->second += v;
    } else {
      entries_.emplace(it, id, v);
    }
  }

  /// Merges `other` into this map, summing values of equal ids.
  /// Linear two-pointer merge: O(|this| + |other|).
  void merge_add(const ValueMap& other) {
    std::vector<value_type> merged;
    merged.reserve(entries_.size() + other.entries_.size());
    auto a = entries_.cbegin();
    auto b = other.entries_.cbegin();
    while (a != entries_.cend() && b != other.entries_.cend()) {
      if (a->first < b->first) {
        merged.push_back(*a++);
      } else if (b->first < a->first) {
        merged.push_back(*b++);
      } else {
        merged.emplace_back(a->first, a->second + b->second);
        ++a;
        ++b;
      }
    }
    merged.insert(merged.end(), a, entries_.cend());
    merged.insert(merged.end(), b, other.entries_.cend());
    entries_ = std::move(merged);
  }

  [[nodiscard]] Value value_of(Id id) const {
    auto it = lower_bound(id);
    return (it != entries_.end() && it->first == id) ? it->second : Value{};
  }

  [[nodiscard]] bool contains(Id id) const {
    auto it = lower_bound(id);
    return it != entries_.end() && it->first == id;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const_iterator begin() const { return entries_.cbegin(); }
  [[nodiscard]] const_iterator end() const { return entries_.cend(); }

  /// Sum of all values.
  [[nodiscard]] Value total() const {
    Value t{};
    for (const auto& [id, v] : entries_) t += v;
    return t;
  }

  /// Removes every entry for which `pred(id, value)` is false.
  template <typename Pred>
  void retain(Pred pred) {
    std::erase_if(entries_, [&](const value_type& e) {
      return !pred(e.first, e.second);
    });
  }

  void reserve(std::size_t n) { entries_.reserve(n); }
  void clear() { entries_.clear(); }

  friend bool operator==(const ValueMap&, const ValueMap&) = default;

 private:
  [[nodiscard]] auto lower_bound(Id id) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const value_type& e, Id key) { return e.first < key; });
  }
  [[nodiscard]] auto lower_bound(Id id) const {
    return std::lower_bound(
        entries_.cbegin(), entries_.cend(), id,
        [](const value_type& e, Id key) { return e.first < key; });
  }

  std::vector<value_type> entries_;
};

}  // namespace nf
