// Heap-allocation counting for zero-alloc steady-state checks.
//
// The counter state lives in nf_common so the engine can always read it,
// but allocations are only *observed* when the `nf_alloc_hook` library —
// a translation unit overriding global operator new — is linked into the
// final binary. Tests and benches that assert allocation behavior link it;
// everything else pays nothing.
//
// Engine integration: Engine::begin_steady_state() marks the warm-up as
// done; from then on each round's allocation delta is accumulated into
// Engine::steady_allocs() and the `engine/steady_allocs` obs counter.
// tests/steady_alloc_test.cpp asserts the total is zero for a loss-free
// flat-payload run.
#pragma once

#include <cstdint>

namespace nf::alloc_hook {

/// Number of heap allocations observed so far (process-wide, all threads).
/// Always 0 when the override TU is not linked.
[[nodiscard]] std::uint64_t count() noexcept;

/// True when the `nf_alloc_hook` override TU is linked into this binary.
/// Tests assert this so a missing link line cannot silently pass.
[[nodiscard]] bool armed() noexcept;

/// Called by the operator-new override for every allocation. Not for
/// protocol code.
void bump() noexcept;

/// Called once from the override TU's static initializer.
void mark_armed() noexcept;

}  // namespace nf::alloc_hook
