// Capability annotations for the threading and allocation contracts
// (DESIGN.md §6c/§6f, docs/STATIC_ANALYSIS.md "Capability model").
//
// The K-shard engine's exactness guarantee rests on a hand-maintained
// discipline: churn, barrier merges, link scheduling, lineage stamping and
// link-stats charging happen on the engine thread in canonical
// (major, minor) order, while shard workers touch only shard-local state;
// and the 10^6-peer hot path stays fast only because a warmed steady-state
// round performs zero heap allocations. These macros make that discipline
// *declared* instead of implied, so tools/nf-lint's whole-program
// capability pass (nf-cap-thread, nf-cap-noalloc, nf-cap-complete) can
// machine-check it at lint time instead of TSan rediscovering it at run
// time.
//
// Place a capability like an attribute, before the declaration:
//
//   NF_ENGINE_THREAD void merge_and_finalize();
//   NF_SHARD_CONTEXT void on_message(Context& ctx, Envelope&& env) override;
//   NF_ENGINE_THREAD NF_STEADY_NOALLOC void admit(Outgoing&& out, ...);
//
// Semantics (enforced by nf-lint, both engines):
//
//  * NF_ENGINE_THREAD — runs on the engine thread only, between shard
//    barriers, in canonical order. Calling it from anything reachable from
//    an NF_SHARD_CONTEXT root is an nf-cap-thread violation.
//  * NF_SHARD_CONTEXT — a shard-worker entry point (Protocol/Phase
//    delivery + tick hooks, ShardPool bodies). Roots of the nf-cap-thread
//    reachability walk. May touch only the executing peer's slots in dense
//    arenas, commutative atomics, and NF_REENTRANT APIs.
//  * NF_REENTRANT — safe from any context (atomics, pure, or shard-local
//    by construction). The reachability walk does not descend into it; its
//    own body is audited where it is defined.
//  * NF_STEADY_NOALLOC — on the zero-alloc steady-state hot path
//    (FlatPhase::on_flat, the barrier merge). No allocating construct —
//    `new`, growing container ops without a reserve in sight,
//    std::string/std::function temporaries, `throw` — may be reachable
//    from it (nf-cap-noalloc); tests/steady_alloc_test.cpp is the dynamic
//    twin of this static gate.
//
// The macros are plain tokens to the dependency-free token engine and
// expand to [[clang::annotate(...)]] for the Clang engine (and plain
// clang builds), so both engines see the same declarations. They expand
// to nothing elsewhere and never change codegen.
#pragma once

#if defined(__clang__)
#define NF_CAP_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define NF_CAP_ANNOTATE(tag)
#endif

/// Engine-thread-only: canonical-order bookkeeping between shard barriers.
#define NF_ENGINE_THREAD NF_CAP_ANNOTATE("nf::cap::engine_thread")

/// Shard-worker entry point: root of the nf-cap-thread reachability walk.
#define NF_SHARD_CONTEXT NF_CAP_ANNOTATE("nf::cap::shard_context")

/// Callable from any context (atomic, pure, or shard-local by design).
#define NF_REENTRANT NF_CAP_ANNOTATE("nf::cap::reentrant")

/// Zero-alloc steady-state hot path: root of the nf-cap-noalloc walk.
#define NF_STEADY_NOALLOC NF_CAP_ANNOTATE("nf::cap::steady_noalloc")
