// Zipf-distributed sampling for workload generation.
//
// The paper's evaluation (§V, Table III) models item popularity with a Zipf
// distribution of skewness α: the k-th most popular of n items is drawn with
// probability proportional to 1/k^α. The evaluation sweeps α from 0
// (uniform) to 5 (extremely skewed), so the sampler must be O(1) per draw
// independent of n (n reaches 10^6 and we draw 10·n instances). We use
// Hörmann & Derflinger's rejection-inversion method, the same algorithm
// behind the samplers in Apache Commons and absl.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace nf {

/// Generalized harmonic number H_{n,alpha} = sum_{k=1..n} k^-alpha.
[[nodiscard]] double generalized_harmonic(std::uint64_t n, double alpha);

/// Samples ranks in [1, n] with P(k) ∝ k^-alpha.
///
/// alpha >= 0; alpha == 0 degenerates to the uniform distribution.
/// Thread-compatible: const sampling requires the caller to pass its Rng.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t num_ranks, double alpha);

  /// Draws one rank in [1, num_ranks].
  [[nodiscard]] std::uint64_t operator()(Rng& rng) const;

  /// Probability mass of rank k under this distribution.
  [[nodiscard]] double pmf(std::uint64_t rank) const;

  [[nodiscard]] std::uint64_t num_ranks() const { return num_ranks_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;
  [[nodiscard]] double h(double x) const;

  std::uint64_t num_ranks_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_num_ranks_;
  double s_;
  double harmonic_;  // H_{n,alpha}, for pmf()
};

}  // namespace nf
