// Global operator new/delete override that counts heap allocations.
//
// Built as its own library (`nf_alloc_hook`) and linked ONLY by binaries
// that assert allocation behavior (tests/steady_alloc_test.cpp). Linking it
// into every target would tax unrelated code and complicate sanitizer
// interposition, so it stays opt-in.
//
// The overrides defer to std::malloc/std::free, which ASan/TSan intercept
// normally, so the sanitizer jobs keep full coverage of hooked binaries.
#include <cstdlib>
#include <new>

#include "common/alloc_hook.h"

namespace {
const bool g_armed_registration = [] {
  nf::alloc_hook::mark_armed();
  return true;
}();

void* counted_alloc(std::size_t size) {
  nf::alloc_hook::bump();
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  nf::alloc_hook::bump();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  nf::alloc_hook::bump();
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  nf::alloc_hook::bump();
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// Touched so -Wunused cannot drop the registration at -O2.
namespace nf::alloc_hook {
bool override_linked() { return g_armed_registration; }
}  // namespace nf::alloc_hook
