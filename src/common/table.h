// Fixed-width text table printer for experiment output.
//
// Every bench binary prints the rows of one paper table/figure. A shared
// printer keeps the output format uniform and greppable:
//
//   TableWriter t({"g", "candidates/peer", "total cost"});
//   t.row(100, 31.4, 5123.0);
#pragma once

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace nf {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers,
                       std::ostream& os = std::cout, int width = 18)
      : headers_(std::move(headers)), os_(os), width_(width) {
    print_header();
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    static_assert(sizeof...(Cells) > 0);
    (print_cell(cells), ...);
    os_ << '\n';
  }

  void rule() const {
    os_ << std::string(headers_.size() * static_cast<std::size_t>(width_),
                       '-')
        << '\n';
  }

 private:
  void print_header() {
    for (const auto& h : headers_) os_ << std::setw(width_) << h;
    os_ << '\n';
    rule();
  }

  template <typename Cell>
  void print_cell(const Cell& cell) {
    std::ostringstream tmp;
    if constexpr (std::is_floating_point_v<Cell>) {
      // Two decimals for ordinary magnitudes; keep significant digits for
      // small values (epsilons, ratios) instead of printing "0.00".
      const double x = static_cast<double>(cell);
      int decimals = 2;
      if (x != 0.0 && std::abs(x) < 0.1) {
        decimals = 2 + static_cast<int>(-std::floor(std::log10(std::abs(x))));
        decimals = std::min(decimals, 9);
      }
      tmp << std::fixed << std::setprecision(decimals) << cell;
    } else {
      tmp << cell;
    }
    os_ << std::setw(width_) << tmp.str();
  }

  std::vector<std::string> headers_;
  std::ostream& os_;
  int width_;
};

}  // namespace nf
