#include "common/zipf.h"

#include <cmath>

#include "common/error.h"

namespace nf {

double generalized_harmonic(std::uint64_t n, double alpha) {
  // Kahan summation from the small terms up, so H is accurate even for
  // n = 10^6 where the tail terms are tiny relative to the head.
  double sum = 0.0;
  double c = 0.0;
  for (std::uint64_t k = n; k >= 1; --k) {
    const double term = std::pow(static_cast<double>(k), -alpha);
    const double y = term - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

ZipfDistribution::ZipfDistribution(std::uint64_t num_ranks, double alpha)
    : num_ranks_(num_ranks), alpha_(alpha) {
  require(num_ranks >= 1, "ZipfDistribution requires at least one rank");
  require(alpha >= 0.0, "ZipfDistribution requires alpha >= 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_ranks_ = h_integral(static_cast<double>(num_ranks) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  harmonic_ = generalized_harmonic(num_ranks, alpha);
}

double ZipfDistribution::h_integral(double x) const {
  // Integral of x^-alpha: log(x) when alpha == 1, else x^(1-alpha)/(1-alpha).
  // Written with expm1/log1p for numerical stability near alpha == 1.
  const double log_x = std::log(x);
  // helper(t) = (exp(t*(1-alpha)) - 1) / (1-alpha), continuous at alpha==1.
  const double t = log_x * (1.0 - alpha_);
  const double helper = (std::abs(t) > 1e-8) ? std::expm1(t) / (1.0 - alpha_)
                                             : log_x * (1.0 + t * 0.5);
  return helper;
}

double ZipfDistribution::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // clamp against rounding below the pole
  const double y = (std::abs(t) > 1e-8)
                       ? std::log1p(t) / (1.0 - alpha_)
                       : x * (1.0 - x * (1.0 - alpha_) * 0.5);
  return std::exp(y);
}

double ZipfDistribution::h(double x) const { return std::pow(x, -alpha_); }

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  if (num_ranks_ == 1) return 1;
  if (alpha_ == 0.0) return rng.between(1, num_ranks_);
  // Hörmann & Derflinger rejection-inversion. Expected < 1.2 iterations.
  while (true) {
    const double u = h_integral_num_ranks_ +
                     rng.uniform() * (h_integral_x1_ - h_integral_num_ranks_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > num_ranks_) {
      k = num_ranks_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

double ZipfDistribution::pmf(std::uint64_t rank) const {
  require(rank >= 1 && rank <= num_ranks_, "rank out of range");
  return std::pow(static_cast<double>(rank), -alpha_) / harmonic_;
}

}  // namespace nf
