// Deterministic pseudo-random number generation.
//
// Everything in the simulator must be reproducible from a single 64-bit
// seed: workload generation, topology wiring, hash-function seeding, churn
// schedules, and sampling. We use xoshiro256** (public domain, Blackman &
// Vigna) seeded via SplitMix64, which is both faster and statistically
// stronger than std::mt19937_64 while keeping the library header-light.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/arena.h"
#include "common/error.h"

namespace nf {

/// SplitMix64 step. Used to expand one seed into xoshiro state and to derive
/// independent sub-seeds (e.g. one per filter hash function).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** engine; satisfies std::uniform_random_bit_generator so it
/// can be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE5EEDull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless method.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    require(bound > 0, "Rng::below requires positive bound");
    const std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    require(lo <= hi, "Rng::between requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator; the i-th child of a given
  /// parent-seed is stable across runs.
  [[nodiscard]] Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// One independent RNG stream per peer, all derived from a single master
/// seed: stream p is the p-th fork, so the arena is reproducible from the
/// seed alone and safe to index from concurrent shards (each peer's
/// callbacks touch only its own stream).
[[nodiscard]] inline PeerArena<Rng> fork_streams(std::uint64_t seed,
                                                 std::uint32_t num_peers) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    streams.push_back(master.fork());
  }
  return PeerArena<Rng>(std::move(streams));
}

/// Fisher-Yates shuffle of a random-access container with an nf::Rng.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  const std::size_t n = c.size();
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.below(i);
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace nf
