// Seeded hash functions and the hash family used to define filters.
//
// netFilter partitions items into item groups by hashing (paper §III-B.1):
// each of the `f` filters is an independent hash function
// h_i : items -> {0..g-1}. Peers must agree on the functions without
// coordination, so a filter is fully described by (seed, g) — two integers
// the root can broadcast. We use the 64-bit finalizer from MurmurHash3
// (fmix64) composed with the seed, which gives good avalanche behaviour and
// is cheap enough to hash millions of items per second.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"

namespace nf {

/// MurmurHash3 64-bit finalizer. Full avalanche: every input bit affects
/// every output bit with probability ~1/2.
[[nodiscard]] constexpr std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// Seeded 64-bit hash of a 64-bit key.
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t key,
                                             std::uint64_t seed) {
  return fmix64(key ^ fmix64(seed));
}

/// SplitMix64-style finalizer (one multiply, partial avalanche). Cheaper
/// than fmix64 where only a few well-mixed bits are consumed afterwards —
/// per-link latency draws, per-transmission loss draws.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

/// Order-independent seeded hash of an unordered peer pair — the canonical
/// way to derive a deterministic per-link quantity (e.g. a link delay)
/// from two endpoints.
[[nodiscard]] constexpr std::uint64_t link_hash(std::uint64_t seed, PeerId a,
                                                PeerId b) {
  const std::uint64_t lo =
      a.value() < b.value() ? a.value() : b.value();
  const std::uint64_t hi =
      a.value() < b.value() ? b.value() : a.value();
  return mix64(seed ^ (lo * 0x9E3779B97F4A7C15ull) ^ (hi << 32));
}

/// Uniform double in [0, 1) from a seeded counter — a stateless random
/// stream. Unlike a sequential Rng, draw i is independent of how many other
/// draws happened before it, which is what makes per-transmission loss
/// decisions identical between serial and sharded engine runs.
[[nodiscard]] constexpr double hash_uniform(std::uint64_t counter,
                                            std::uint64_t seed) {
  return static_cast<double>(hash64(counter, seed) >> 11) * 0x1.0p-53;
}

/// FNV-1a over bytes, for hashing application-level string keys (keywords,
/// byte sequences) into the 64-bit ItemId space.
[[nodiscard]] inline std::uint64_t hash_bytes(std::string_view bytes,
                                              std::uint64_t seed = 0) {
  std::uint64_t h = 0xCBF29CE484222325ull ^ fmix64(seed);
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return fmix64(h);
}

/// One hash filter: maps items to one of `g` item groups.
///
/// Copyable value type; two GroupHash instances with the same (seed, g)
/// behave identically on every peer, which is what makes decentralized
/// candidate materialization possible (paper §III-C).
class GroupHash {
 public:
  GroupHash(std::uint64_t seed, std::uint32_t num_groups)
      : seed_(seed), num_groups_(num_groups) {
    require(num_groups > 0, "GroupHash requires at least one group");
  }

  [[nodiscard]] GroupId group_of(ItemId item) const {
    // Multiply-shift style range reduction of the seeded hash. Using the
    // high bits via 128-bit multiply avoids modulo bias entirely.
    const std::uint64_t h = hash64(item.value(), seed_);
    const auto g = static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(h) * num_groups_) >> 64);
    return GroupId(g);
  }

  [[nodiscard]] std::uint32_t num_groups() const { return num_groups_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  friend bool operator==(const GroupHash&, const GroupHash&) = default;

 private:
  std::uint64_t seed_;
  std::uint32_t num_groups_;
};

/// A bank of `f` independent filters, all with the same group count `g`.
/// This is the complete, broadcastable description of netFilter's
/// candidate-filtering configuration.
class FilterBank {
 public:
  /// Derives `num_filters` independent seeds from `master_seed`.
  FilterBank(std::uint64_t master_seed, std::uint32_t num_filters,
             std::uint32_t num_groups) {
    require(num_filters > 0, "FilterBank requires at least one filter");
    std::uint64_t sm = master_seed;
    filters_.reserve(num_filters);
    for (std::uint32_t i = 0; i < num_filters; ++i) {
      filters_.emplace_back(splitmix64(sm), num_groups);
    }
  }

  [[nodiscard]] std::uint32_t num_filters() const {
    return static_cast<std::uint32_t>(filters_.size());
  }
  [[nodiscard]] std::uint32_t num_groups() const {
    return filters_.front().num_groups();
  }
  [[nodiscard]] const GroupHash& filter(std::uint32_t i) const {
    require(i < filters_.size(), "filter index out of range");
    return filters_[i];
  }

  /// The f groups an item belongs to, one per filter.
  [[nodiscard]] std::vector<GroupId> groups_of(ItemId item) const {
    std::vector<GroupId> out;
    out.reserve(filters_.size());
    for (const auto& f : filters_) out.push_back(f.group_of(item));
    return out;
  }

  friend bool operator==(const FilterBank&, const FilterBank&) = default;

 private:
  std::vector<GroupHash> filters_;
};

}  // namespace nf
