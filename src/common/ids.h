// Strong identifier types used across the netFilter codebase.
//
// The protocol juggles several integer id spaces (peers, items, item groups,
// filters). Mixing them up is an easy, silent bug in a simulator, so each id
// space gets its own strong type. The wrapper is a zero-cost `struct` with an
// explicit constructor and full comparison support; it converts back to its
// raw representation only through `value()`.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace nf {

/// CRTP-free strong id wrapper. `Tag` makes distinct instantiations
/// non-interconvertible; `Rep` is the underlying integer representation.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_{0};
};

/// Identifies a peer (node) in the overlay. Dense: peers are numbered
/// `0..N-1` by the simulator.
using PeerId = StrongId<struct PeerIdTag, std::uint32_t>;

/// Identifies a distinct data item (e.g. a song, keyword, flow key).
/// Sparse: item ids live in an arbitrary 64-bit key space so that hashed
/// application keys (keyword strings, address pairs) can be used directly.
using ItemId = StrongId<struct ItemIdTag, std::uint64_t>;

/// Identifies one item group within one filter (0..g-1).
using GroupId = StrongId<struct GroupIdTag, std::uint32_t>;

/// Sentinel used by the hierarchy-repair protocol: "my depth is unknown".
inline constexpr std::uint32_t kInfiniteDepth = 0xFFFFFFFFu;

}  // namespace nf

namespace std {

template <typename Tag, typename Rep>
struct hash<nf::StrongId<Tag, Rep>> {
  size_t operator()(nf::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
