// Read-only access to per-peer local item sets.
//
// Decouples the aggregation/core layers from the workload generator: any
// source of local item sets (synthetic workload, application adapter, test
// fixture) implements this interface.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/value_map.h"

namespace nf {

/// Values are unsigned counts (number of downloads, queries, packets...).
using Value = std::uint64_t;
using LocalItems = ValueMap<ItemId, Value>;

class ItemSource {
 public:
  virtual ~ItemSource() = default;

  /// Peer `p`'s local item set A_p with local values.
  [[nodiscard]] virtual const LocalItems& local_items(PeerId p) const = 0;

  /// Number of peers the source covers.
  [[nodiscard]] virtual std::uint32_t num_peers() const = 0;
};

}  // namespace nf
