// Error handling for the netFilter library.
//
// The library throws exceptions for contract violations and unrecoverable
// configuration errors (per C++ Core Guidelines E.2/E.3: use exceptions for
// error handling, asserts for internal invariants that should never fire).
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nf {

/// Base class for every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a public API is called with invalid arguments
/// (e.g. a filter bank with zero groups, a threshold ratio outside (0,1]).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Thrown when a protocol invariant is violated at runtime
/// (e.g. a message addressed to a peer that is not alive).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Concatenates arbitrary streamable values into a string. Used for error
/// messages; avoids std::format, which is unavailable on GCC 12.
template <typename... Args>
[[nodiscard]] std::string concat(const Args&... args) {
  std::ostringstream os;
  if constexpr (sizeof...(Args) > 0) {
    (os << ... << args);
  }
  return os.str();
}

/// Precondition check for public API boundaries. Unlike `assert`, this is
/// always on: a simulator that silently continues after a bad configuration
/// produces plausible-looking garbage, which is worse than stopping.
inline void require(
    bool condition, const std::string& what,
    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvalidArgument(
        concat(what, " (", loc.file_name(), ":", loc.line(), ")"));
  }
}

/// Internal invariant check; throws ProtocolError with location info.
inline void ensure(
    bool condition, const std::string& what,
    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw ProtocolError(concat("invariant violated: ", what, " (",
                               loc.file_name(), ":", loc.line(), ")"));
  }
}

}  // namespace nf
