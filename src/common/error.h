// Error handling for the netFilter library.
//
// The library throws exceptions for contract violations and unrecoverable
// configuration errors (per C++ Core Guidelines E.2/E.3: use exceptions for
// error handling, asserts for internal invariants that should never fire).
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nf {

/// Base class for every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a public API is called with invalid arguments
/// (e.g. a filter bank with zero groups, a threshold ratio outside (0,1]).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Thrown when a protocol invariant is violated at runtime
/// (e.g. a message addressed to a peer that is not alive).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Concatenates arbitrary streamable values into a string. Used for error
/// messages; avoids std::format, which is unavailable on GCC 12.
template <typename... Args>
[[nodiscard]] std::string concat(const Args&... args) {
  std::ostringstream os;
  if constexpr (sizeof...(Args) > 0) {
    (os << ... << args);
  }
  return os.str();
}

/// Precondition check for public API boundaries. Unlike `assert`, this is
/// always on: a simulator that silently continues after a bad configuration
/// produces plausible-looking garbage, which is worse than stopping.
///
/// Takes `const char*` so a passing check is allocation-free: the message
/// string only materializes on the throw path. This is load-bearing for the
/// zero-alloc steady state — checks like PeerRowArena::row() run hundreds of
/// times per message, and a `const std::string&` parameter would heap-
/// allocate on every call (tests/steady_alloc_test.cpp is the gate). Callers
/// with dynamic messages use the std::string overload (cold paths only).
inline void require(
    bool condition, const char* what,
    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    // The throw path only fires on a violated precondition, after which the
    // run is dead; passing checks touch no heap.
    // nf-lint: nf-cap-noalloc-ok
    throw InvalidArgument(
        concat(what, " (", loc.file_name(), ":", loc.line(), ")"));
  }
}

inline void require(
    bool condition, const std::string& what,
    std::source_location loc = std::source_location::current()) {
  require(condition, what.c_str(), loc);
}

/// Internal invariant check; throws ProtocolError with location info.
/// `const char*` for the same zero-alloc reason as require().
inline void ensure(
    bool condition, const char* what,
    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    // Invariant-failure path, never taken in a healthy steady state; passing
    // checks touch no heap.
    // nf-lint: nf-cap-noalloc-ok
    throw ProtocolError(concat("invariant violated: ", what, " (",
                               loc.file_name(), ":", loc.line(), ")"));
  }
}

inline void ensure(
    bool condition, const std::string& what,
    std::source_location loc = std::source_location::current()) {
  ensure(condition, what.c_str(), loc);
}

}  // namespace nf
