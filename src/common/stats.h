// Small statistics utilities used by the experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"

namespace nf {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Percentile over a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. Copies and sorts; intended for experiment post-processing,
/// not hot paths.
[[nodiscard]] inline double percentile(std::vector<double> sample, double q) {
  require(!sample.empty(), "percentile of empty sample");
  require(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

}  // namespace nf
