// Minimal leveled logging for the simulator.
//
// The experiment binaries print their results on stdout; diagnostics go to
// stderr through this logger so the two streams never mix. Logging is off
// (kWarn) by default and is cheap when disabled: the level check happens
// before any argument formatting. The initial level can be set from the
// environment: NF_LOG_LEVEL=debug|info|warn|error (case-insensitive;
// unknown values are ignored).
#pragma once

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace nf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses a log level name: debug, info, warn/warning, error
/// (case-insensitive). Returns nullopt for anything else.
[[nodiscard]] inline std::optional<LogLevel> parse_log_level(
    std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace detail {
inline LogLevel log_level_from_env(LogLevel fallback) {
  const char* env = std::getenv("NF_LOG_LEVEL");
  if (env == nullptr) return fallback;
  return parse_log_level(env).value_or(fallback);
}
inline LogLevel& log_level_ref() {
  static LogLevel level = log_level_from_env(LogLevel::kWarn);
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace detail

inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }
[[nodiscard]] inline LogLevel log_level() { return detail::log_level_ref(); }

/// Re-reads NF_LOG_LEVEL and applies it (keeping the current level when the
/// variable is unset or unparsable). The static initializer covers normal
/// startup; this exists for tests and for callers that change the
/// environment after startup.
inline void init_log_level_from_env() {
  detail::log_level_ref() = detail::log_level_from_env(log_level());
}

/// Logs all streamed arguments on one stderr line if `level` is enabled.
template <typename... Args>
void log(LogLevel level, std::string_view tag, const Args&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream os;
  switch (level) {
    case LogLevel::kDebug: os << "[debug "; break;
    case LogLevel::kInfo:  os << "[info  "; break;
    case LogLevel::kWarn:  os << "[warn  "; break;
    case LogLevel::kError: os << "[error "; break;
  }
  os << tag << "] ";
  (os << ... << args);
  os << '\n';
  const std::scoped_lock lock(detail::log_mutex());
  std::cerr << os.str();
}

template <typename... Args>
void log_debug(std::string_view tag, const Args&... args) {
  log(LogLevel::kDebug, tag, args...);
}
template <typename... Args>
void log_info(std::string_view tag, const Args&... args) {
  log(LogLevel::kInfo, tag, args...);
}
template <typename... Args>
void log_warn(std::string_view tag, const Args&... args) {
  log(LogLevel::kWarn, tag, args...);
}
template <typename... Args>
void log_error(std::string_view tag, const Args&... args) {
  log(LogLevel::kError, tag, args...);
}

}  // namespace nf
