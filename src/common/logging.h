// Minimal leveled logging for the simulator.
//
// The experiment binaries print their results on stdout; diagnostics go to
// stderr through this logger so the two streams never mix. Logging is off
// (kWarn) by default and is cheap when disabled: the level check happens
// before any argument formatting.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace nf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace detail

inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }
[[nodiscard]] inline LogLevel log_level() { return detail::log_level_ref(); }

/// Logs all streamed arguments on one stderr line if `level` is enabled.
template <typename... Args>
void log(LogLevel level, std::string_view tag, const Args&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream os;
  switch (level) {
    case LogLevel::kDebug: os << "[debug "; break;
    case LogLevel::kInfo:  os << "[info  "; break;
    case LogLevel::kWarn:  os << "[warn  "; break;
    case LogLevel::kError: os << "[error "; break;
  }
  os << tag << "] ";
  (os << ... << args);
  os << '\n';
  const std::scoped_lock lock(detail::log_mutex());
  std::cerr << os.str();
}

template <typename... Args>
void log_debug(std::string_view tag, const Args&... args) {
  log(LogLevel::kDebug, tag, args...);
}
template <typename... Args>
void log_info(std::string_view tag, const Args&... args) {
  log(LogLevel::kInfo, tag, args...);
}
template <typename... Args>
void log_warn(std::string_view tag, const Args&... args) {
  log(LogLevel::kWarn, tag, args...);
}
template <typename... Args>
void log_error(std::string_view tag, const Args&... args) {
  log(LogLevel::kError, tag, args...);
}

}  // namespace nf
