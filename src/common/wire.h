// Wire-size configuration: the byte cost of each protocol field.
//
// The paper's sole performance metric is communication cost in bytes, built
// from three field sizes (Table II/III): sa (an aggregate value), sg (an
// item-group identifier), si (an item identifier). All default to 4 bytes.
// Making them a value type lets experiments reproduce the paper exactly and
// also explore e.g. 8-byte identifiers.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace nf {

/// Byte counts for serialized protocol fields.
struct WireSizes {
  std::uint32_t aggregate_bytes = 4;  ///< sa: one aggregate value
  std::uint32_t group_id_bytes = 4;   ///< sg: one item-group identifier
  std::uint32_t item_id_bytes = 4;    ///< si: one item identifier

  /// Bytes for one <item id, value> pair as propagated during candidate
  /// aggregation and by the naive approach: sa + si.
  [[nodiscard]] std::uint64_t item_value_pair() const {
    return std::uint64_t{aggregate_bytes} + item_id_bytes;
  }

  void validate() const {
    require(aggregate_bytes > 0 && group_id_bytes > 0 && item_id_bytes > 0,
            "wire sizes must be positive");
  }
};

}  // namespace nf
