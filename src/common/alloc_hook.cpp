#include "common/alloc_hook.h"

#include <atomic>

namespace nf::alloc_hook {

namespace {
std::atomic<std::uint64_t> g_count{0};
std::atomic<bool> g_armed{false};
}  // namespace

std::uint64_t count() noexcept {
  return g_count.load(std::memory_order_relaxed);
}

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

void bump() noexcept { g_count.fetch_add(1, std::memory_order_relaxed); }

void mark_armed() noexcept { g_armed.store(true, std::memory_order_relaxed); }

}  // namespace nf::alloc_hook
