// Byte-level codecs for the protocol messages.
//
// The paper charges flat field sizes (sa = sg = si = 4 bytes, Table III).
// A deployment would serialize for real, so this module provides the
// encodings a production implementation would use and exact decoders for
// them:
//
//   * varint  — LEB128 variable-length unsigned integers; small aggregate
//     values cost one byte, not four.
//   * delta   — sorted id lists stored as first-difference varints; dense
//     id ranges (heavy group ids) shrink dramatically.
//   * pairs   — <item id, value> lists as delta-coded sorted ids plus
//     varint values: the candidate aggregation and naive messages.
//   * dense   — group-aggregate vectors as fixed-width or varint arrays.
//
// bench/ablation_encoding compares the paper's flat-field byte model with
// these realistic encodings across every message type of a full run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/value_map.h"
#include "net/payload.h"

namespace nf::net {

using Bytes = std::vector<std::uint8_t>;

/// Appends the LEB128 encoding of `value` to `out`.
void put_varint(Bytes& out, std::uint64_t value);

/// Reads one LEB128 integer at `offset`, advancing it. Throws
/// ProtocolError on truncated or over-long input.
[[nodiscard]] std::uint64_t get_varint(std::span<const std::uint8_t> in,
                                       std::size_t& offset);

/// Byte size of the LEB128 encoding of `value`.
[[nodiscard]] std::size_t varint_size(std::uint64_t value);

/// Sorted id list -> count + delta-coded varints.
[[nodiscard]] Bytes encode_sorted_ids(std::span<const std::uint64_t> ids);
[[nodiscard]] std::vector<std::uint64_t> decode_sorted_ids(
    std::span<const std::uint8_t> in);

/// <item, value> map -> count + delta-coded ids with interleaved varint
/// values (ValueMap iterates sorted, so deltas are non-negative).
[[nodiscard]] Bytes encode_pairs(const ValueMap<ItemId, std::uint64_t>& map);
[[nodiscard]] ValueMap<ItemId, std::uint64_t> decode_pairs(
    std::span<const std::uint8_t> in);

/// Dense aggregate vector -> count + varint per slot (zeros cost 1 byte).
[[nodiscard]] Bytes encode_aggregates(std::span<const std::uint64_t> values);
[[nodiscard]] std::vector<std::uint64_t> decode_aggregates(
    std::span<const std::uint8_t> in);

/// Fixed-width reference encoding (the paper's model): 4 bytes per slot,
/// values clamped at 2^32-1.
[[nodiscard]] Bytes encode_aggregates_fixed32(
    std::span<const std::uint64_t> values);
[[nodiscard]] std::vector<std::uint64_t> decode_aggregates_fixed32(
    std::span<const std::uint8_t> in);

// --- Slab-writer variants (net/payload.h) ---------------------------------
//
// Byte-for-byte identical to the Bytes-returning encoders above, but append
// straight into a slab arena through a PayloadWriter: zero intermediate
// allocation on the hot path. tests/codec_test.cpp pins the equivalence.

/// Sorted id list -> count + delta-coded varints, into `w`.
void encode_sorted_ids_to(PayloadWriter& w, std::span<const std::uint64_t> ids);

/// <item, value> map -> count + delta ids + interleaved values, into `w`.
void encode_pairs_to(PayloadWriter& w,
                     const ValueMap<ItemId, std::uint64_t>& map);

/// Dense aggregate vector -> count + varint per slot, into `w`.
void encode_aggregates_to(PayloadWriter& w,
                          std::span<const std::uint64_t> values);

/// Decodes an aggregate vector and adds it slot-wise into `acc` without
/// allocating. Throws ProtocolError if the encoded count differs from
/// `acc.size()` or the input is truncated/overlong.
void add_aggregates_from(std::span<const std::uint8_t> in,
                         std::span<std::uint64_t> acc);

}  // namespace nf::net
