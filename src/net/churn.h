// Churn schedules: scripted peer failures, departures and (re)joins.
//
// The paper assumes stable peers are recruited so that churn during a
// netFilter run is rare (§III-A), but the hierarchy must survive it
// (§III-A.3). A ChurnSchedule is a deterministic script of liveness flips
// that the engine applies at round boundaries; tests and the churn ablation
// bench build schedules by hand or randomly from a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace nf::net {

enum class ChurnEventType : std::uint8_t { kFail, kJoin };

struct ChurnEvent {
  std::uint64_t round;
  ChurnEventType type;
  PeerId peer;
};

class ChurnSchedule {
 public:
  ChurnSchedule() = default;

  void fail_at(std::uint64_t round, PeerId peer) {
    events_.push_back({round, ChurnEventType::kFail, peer});
  }
  void join_at(std::uint64_t round, PeerId peer) {
    events_.push_back({round, ChurnEventType::kJoin, peer});
  }

  /// Events scheduled for exactly `round`, in insertion order.
  [[nodiscard]] std::vector<ChurnEvent> events_at(std::uint64_t round) const {
    std::vector<ChurnEvent> out;
    for (const auto& e : events_) {
      if (e.round == round) out.push_back(e);
    }
    return out;
  }

  [[nodiscard]] const std::vector<ChurnEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Random schedule: every round in [first_round, last_round], each alive
  /// non-root peer fails independently with probability `fail_prob`.
  static ChurnSchedule random_failures(std::uint64_t first_round,
                                       std::uint64_t last_round,
                                       std::uint32_t num_peers,
                                       double fail_prob, PeerId protect,
                                       Rng& rng) {
    ChurnSchedule s;
    for (std::uint64_t r = first_round; r <= last_round; ++r) {
      for (std::uint32_t p = 0; p < num_peers; ++p) {
        if (PeerId(p) == protect) continue;
        if (rng.chance(fail_prob)) s.fail_at(r, PeerId(p));
      }
    }
    return s;
  }

 private:
  std::vector<ChurnEvent> events_;
};

}  // namespace nf::net
