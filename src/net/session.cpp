#include "net/session.h"

#include <utility>

namespace nf::net {

void PhaseContext::send_raw(PeerId to, TrafficCategory category,
                            std::uint64_t bytes, std::any payload) {
  mux_.charge(session_, category, bytes);
  // Explicitly thread this context's cause: during buffered replay it is
  // the replayed envelope's lineage, which the engine Context cannot know.
  ctx_.send_tagged(to, category, bytes, std::move(payload), session_, phase_,
                   std::span<const obs::LineageId>(&cause_, 1));
}

void PhaseContext::send_raw(PeerId to, TrafficCategory category,
                            std::uint64_t bytes, std::any payload,
                            std::span<const obs::LineageId> parents) {
  mux_.charge(session_, category, bytes);
  ctx_.send_tagged(to, category, bytes, std::move(payload), session_, phase_,
                   parents);
}

void PhaseContext::send_flat(PeerId to, TrafficCategory category,
                             std::uint64_t bytes, PayloadRef flat) {
  mux_.charge(session_, category, bytes);
  ctx_.send_flat_tagged(to, category, bytes, flat, session_, phase_,
                        std::span<const obs::LineageId>(&cause_, 1));
}

void PhaseContext::send_flat(PeerId to, TrafficCategory category,
                             std::uint64_t bytes, PayloadRef flat,
                             std::span<const obs::LineageId> parents) {
  mux_.charge(session_, category, bytes);
  ctx_.send_flat_tagged(to, category, bytes, flat, session_, phase_, parents);
}

void PhaseContext::open_phase(PhaseId phase) {
  mux_.open_at(ctx_, session_, phase, cause_);
}

SessionId SessionMux::add_session(std::string name) {
  auto slot = std::make_unique<SessionSlot>();
  slot->name = std::move(name);
  sessions_.push_back(std::move(slot));
  const auto sid = static_cast<SessionId>(sessions_.size() - 1);
  if (obs_ != nullptr) {
    obs_->lineage.set_session_name(sid, sessions_.back()->name);
  }
  return sid;
}

PhaseId SessionMux::add_phase(SessionId session, Phase& phase,
                              PhaseOptions options) {
  require(session < sessions_.size(), "unknown session");
  SessionSlot& s = *sessions_[session];
  auto ps = std::make_unique<PhaseSlot>();
  ps->phase = &phase;
  ps->options = options;
  if (options.name[0] != '\0' && obs_ != nullptr) {
    // Bare phase names for unnamed (single) sessions keep the classic span
    // set ("filtering", ...); named sessions get their own trace track.
    ps->span_name = s.name.empty()
                        ? options.name
                        : obs_->tracer.intern(s.name + "/" + options.name);
  }
  s.phases.push_back(std::move(ps));
  const auto pid = static_cast<PhaseId>(s.phases.size() - 1);
  if (obs_ != nullptr) {
    obs_->lineage.set_phase_name(session, pid, options.name);
  }
  return pid;
}

SessionMux::PhaseSlot& SessionMux::slot(SessionId s, PhaseId p) const {
  ensure(s < sessions_.size(), "envelope tagged with unknown session");
  ensure(p < sessions_[s]->phases.size(),
         "envelope tagged with unknown phase");
  return *sessions_[s]->phases[p];
}

std::string SessionMux::display_name(SessionId s) const {
  const std::string& name = sessions_[s]->name;
  return name.empty() ? "s" + std::to_string(s) : name;
}

void SessionMux::on_run_start(const Overlay& overlay) {
  rounds_seen_ = 0;
  for (const auto& session : sessions_) {
    session->done_round = obs::LineageRecorder::kNoRound;
    for (const auto& ps : session->phases) {
      if (ps->opened.empty()) ps->opened.assign(overlay.num_peers(), false);
      if (!ps->options.open_on_message && ps->buffered.empty()) {
        ps->buffered.assign(overlay.num_peers(), {});
      }
      ps->phase->on_run_start(overlay);
    }
  }
}

// Completion detection runs on the engine thread: done() flips inside a
// shard callback during round r, is published by the round barrier, and is
// observed at the next round boundary (or at on_run_end when round r was
// the run's last). rounds_seen_ has been incremented r+1 times by then, so
// the recorded done round is r+1 — the run-relative round of the gating
// delivery, matching the lineage clock convention (first round's
// deliveries are round 1).
void SessionMux::record_done_rounds() {
  for (SessionId s = 0; s < sessions_.size(); ++s) {
    SessionSlot& session = *sessions_[s];
    if (session.done_round != obs::LineageRecorder::kNoRound) continue;
    if (!session_done(s)) continue;
    session.done_round = rounds_seen_;
    if (obs_ != nullptr) obs_->lineage.set_session_done(s, rounds_seen_);
  }
}

void SessionMux::on_round_begin(std::uint64_t /*round*/) {
  record_done_rounds();
  ++rounds_seen_;
  // Span-end detection runs on the engine thread: done() flips inside a
  // shard callback, is published by the round barrier, and the span closes
  // at the next round boundary (value 0 — spans measure rounds, not wall
  // time, under the mux).
  if (obs_ == nullptr) return;
  for (const auto& session : sessions_) {
    for (const auto& ps : session->phases) {
      if (ps->span_name[0] != '\0' && !ps->span_ended &&
          ps->span_begun.load(std::memory_order_relaxed) &&
          ps->phase->done()) {
        ps->span_ended = true;
        obs_->tracer.record(obs::EventKind::kPhaseEnd, ps->span_name);
      }
    }
  }
}

void SessionMux::on_run_end() {
  record_done_rounds();
  // A phase that completed in the run's final round never sees another
  // round boundary, so close any span still open here.
  if (obs_ == nullptr) return;
  for (const auto& session : sessions_) {
    for (const auto& ps : session->phases) {
      if (ps->span_name[0] != '\0' && !ps->span_ended &&
          ps->span_begun.load(std::memory_order_relaxed)) {
        ps->span_ended = true;
        obs_->tracer.record(obs::EventKind::kPhaseEnd, ps->span_name);
      }
    }
  }
}

void SessionMux::maybe_begin_span(PhaseSlot& ps) {
  if (obs_ == nullptr || ps.span_name[0] == '\0') return;
  if (!ps.span_begun.exchange(true, std::memory_order_relaxed)) {
    obs_->tracer.record(obs::EventKind::kPhaseBegin, ps.span_name);
  }
}

void SessionMux::open_at(Context& ctx, SessionId s, PhaseId p,
                         obs::LineageId cause) {
  PhaseSlot& ps = slot(s, p);
  const PeerId self = ctx.self();
  if (ps.opened[self]) return;
  ps.opened[self] = true;
  maybe_begin_span(ps);
  PhaseContext pctx(*this, ctx, s, p, cause);
  ps.phase->on_start(pctx);
  if (!ps.buffered.empty()) {
    // Replay early arrivals in arrival order (deterministic: predispatch
    // buffered them in canonical delivery order). Each replayed envelope
    // keeps its own lineage as the cause, not the delivery that opened the
    // phase — sends it triggers point at the true causal parent.
    std::vector<BufferedEnvelope>& queue = ps.buffered[self];
    for (BufferedEnvelope& buf : queue) {
      PhaseContext rctx(*this, ctx, s, p, buf.env.lineage);
      // The slab slot the ref pointed into has been reclaimed; serve the
      // payload from the copy taken at buffering time.
      if (buf.env.flat.valid()) {
        rctx.replay_payload_ = buf.flat_bytes;
        rctx.replay_payload_active_ = true;
      }
      ps.phase->on_message(rctx, std::move(buf.env));
    }
    queue.clear();
    queue.shrink_to_fit();
  }
}

void SessionMux::on_round(Context& ctx) {
  for (SessionId s = 0; s < sessions_.size(); ++s) {
    const SessionSlot& session = *sessions_[s];
    for (PhaseId p = 0; p < session.phases.size(); ++p) {
      PhaseSlot& ps = *session.phases[p];
      if (ps.options.start == PhaseStart::kAllPeers &&
          !ps.opened[ctx.self()]) {
        open_at(ctx, s, p, ctx.cause());
      }
      if (ps.opened[ctx.self()] && !ps.phase->done()) {
        PhaseContext pctx(*this, ctx, s, p, ctx.cause());
        ps.phase->on_round(pctx);
      }
    }
  }
}

void SessionMux::on_message(Context& ctx, Envelope&& env) {
  ensure(env.session != kNoSession, "untagged envelope reached a SessionMux");
  const SessionId s = env.session;
  const PhaseId p = env.phase;
  PhaseSlot& ps = slot(s, p);
  const PeerId self = ctx.self();
  if (!ps.opened[self]) {
    if (!ps.options.open_on_message) {
      const std::span<const std::uint8_t> flat = ctx.payload_bytes(env);
      ps.buffered[self].push_back(BufferedEnvelope{
          std::move(env), {flat.begin(), flat.end()}});
      return;
    }
    open_at(ctx, s, p, env.lineage);
  }
  PhaseContext pctx(*this, ctx, s, p, env.lineage);
  ps.phase->on_message(pctx, std::move(env));
}

bool SessionMux::active() const {
  for (const auto& session : sessions_) {
    for (const auto& ps : session->phases) {
      if (!ps->phase->done()) return true;
    }
  }
  return false;
}

bool SessionMux::session_done(SessionId session) const {
  require(session < sessions_.size(), "unknown session");
  for (const auto& ps : sessions_[session]->phases) {
    if (!ps->phase->done()) return false;
  }
  return true;
}

std::uint64_t SessionMux::done_round(SessionId session) const {
  require(session < sessions_.size(), "unknown session");
  const std::uint64_t r = sessions_[session]->done_round;
  return r != obs::LineageRecorder::kNoRound ? r : rounds_seen_;
}

void SessionMux::charge(SessionId s, TrafficCategory category,
                        std::uint64_t bytes) {
  SessionSlot& session = *sessions_[s];
  const auto c = static_cast<std::size_t>(category);
  session.bytes[c].fetch_add(bytes, std::memory_order_relaxed);
  session.msgs[c].fetch_add(1, std::memory_order_relaxed);
}

std::vector<SessionTraffic> SessionMux::traffic() const {
  std::vector<SessionTraffic> out;
  out.reserve(sessions_.size());
  for (SessionId s = 0; s < sessions_.size(); ++s) {
    SessionTraffic t;
    t.name = display_name(s);
    for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
      t.bytes[c] = sessions_[s]->bytes[c].load(std::memory_order_relaxed);
      t.msgs[c] = sessions_[s]->msgs[c].load(std::memory_order_relaxed);
    }
    out.push_back(std::move(t));
  }
  return out;
}

void SessionMux::flush_obs_counters() {
  if (obs_ == nullptr) return;
  for (const SessionTraffic& t : traffic()) {
    const std::string base = "session/" + t.name + "/";
    for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
      if (t.msgs[c] == 0) continue;
      const std::string cat(
          to_string(static_cast<TrafficCategory>(c)));
      // Runs once per engine run at teardown, over a handful of sessions;
      // the keys are data-dependent, so there is no handle to hoist.
      obs_->registry.counter(base + cat + "_bytes").add(t.bytes[c]);  // nf-lint: nf-obs-context-ok
      obs_->registry.counter(base + cat + "_msgs").add(t.msgs[c]);  // nf-lint: nf-obs-context-ok
    }
  }
}

}  // namespace nf::net
