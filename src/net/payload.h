// Flat slab-backed message payloads.
//
// The hot path never ships owning objects: a payload is encoded once into a
// byte slab and referenced by a PayloadRef — (slab id, offset, length). Slabs
// are append-only arenas with high-water-mark reset: clearing keeps the
// capacity, so after a warm-up round the steady state performs no heap
// allocation (see DESIGN.md §6f for the lifetime rules).
//
// Slab id space (assigned by net::Engine):
//   [0, kRingSlabBase)   per-shard outbox slabs, written during the parallel
//                        phase of a round, valid until the next predispatch.
//   [kRingSlabBase, ...) transit-ring slot slabs, written at the merge
//                        barrier in canonical order, valid until the slot's
//                        delivery round completes.
//
// Refs are resolved through the engine's slab table at read time, so slab
// growth never invalidates a PayloadRef (offsets are stable; only the base
// pointer moves).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace nf::net {

/// First slab id reserved for transit-ring slot slabs.
inline constexpr std::uint32_t kRingSlabBase = 0x8000'0000u;

/// Sentinel slab id: the envelope carries no flat payload.
inline constexpr std::uint32_t kNoSlab = 0xFFFF'FFFFu;

/// A non-owning view into a slab arena. Trivially copyable; the engine
/// rewrites the ref when it copies the span across slab lifetimes (shard
/// outbox -> transit-ring slot, or retransmit buffer -> transit-ring slot).
struct PayloadRef {
  std::uint32_t slab = kNoSlab;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  [[nodiscard]] bool valid() const { return slab != kNoSlab; }
};

/// Append-only byte arena with high-water-mark reset: reset() drops the size
/// but keeps the capacity, so a warmed slab serves subsequent rounds without
/// reallocating.
class SlabArena {
 public:
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::size_t capacity() const { return bytes_.capacity(); }

  void reset() { bytes_.clear(); }

  void reserve(std::size_t n) { bytes_.reserve(n); }

  void push(std::uint8_t b) { bytes_.push_back(b); }

  void append(std::span<const std::uint8_t> span) {
    bytes_.insert(bytes_.end(), span.begin(), span.end());
  }

  [[nodiscard]] std::span<const std::uint8_t> view(std::uint32_t offset,
                                                   std::uint32_t length) const {
    ensure(std::size_t{offset} + length <= bytes_.size(),
           "payload ref outside slab");
    return {bytes_.data() + offset, length};
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Encodes one payload at the tail of a slab. Obtain via
/// Context::flat_payload() (binds to the executing shard's outbox slab),
/// append varints/spans, then finish() to get the PayloadRef to send.
class PayloadWriter {
 public:
  PayloadWriter(SlabArena& slab, std::uint32_t slab_id)
      : slab_(&slab),
        slab_id_(slab_id),
        start_(static_cast<std::uint32_t>(slab.size())) {}

  void put_varint(std::uint64_t value) {
    while (value >= 0x80) {
      slab_->push(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    slab_->push(static_cast<std::uint8_t>(value));
  }

  void put_bytes(std::span<const std::uint8_t> bytes) { slab_->append(bytes); }

  /// Bytes written so far by this writer.
  [[nodiscard]] std::uint32_t written() const {
    return static_cast<std::uint32_t>(slab_->size()) - start_;
  }

  [[nodiscard]] PayloadRef finish() const {
    return PayloadRef{slab_id_, start_, written()};
  }

 private:
  SlabArena* slab_;
  std::uint32_t slab_id_;
  std::uint32_t start_;
};

/// Copies `bytes` to the tail of `slab`, returning a ref into it. Used by
/// the engine at the merge barrier and by the retransmit path.
inline PayloadRef copy_to_slab(SlabArena& slab, std::uint32_t slab_id,
                               std::span<const std::uint8_t> bytes) {
  const auto offset = static_cast<std::uint32_t>(slab.size());
  slab.append(bytes);
  return PayloadRef{slab_id, offset, static_cast<std::uint32_t>(bytes.size())};
}

}  // namespace nf::net
