#include "net/overlay.h"

#include "common/error.h"

namespace nf::net {

Overlay::Overlay(Topology topology)
    : topology_(std::move(topology)),
      alive_(topology_.num_peers(), true),
      num_alive_(topology_.num_peers()) {}

std::vector<PeerId> Overlay::alive_neighbors(PeerId p) const {
  std::vector<PeerId> out;
  for (PeerId q : topology_.neighbors(p)) {
    if (is_alive(q)) out.push_back(q);
  }
  return out;
}

void Overlay::fail(PeerId p) {
  require(p.value() < num_peers(), "peer out of range");
  if (alive_[p.value()]) {
    alive_[p.value()] = false;
    --num_alive_;
  }
}

void Overlay::revive(PeerId p) {
  require(p.value() < num_peers(), "peer out of range");
  if (!alive_[p.value()]) {
    alive_[p.value()] = true;
    ++num_alive_;
  }
}

}  // namespace nf::net
