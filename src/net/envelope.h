// Message envelope carried by the round engine.
//
// Payloads travel one of two ways. Hot-path protocols encode into a slab
// arena and attach a flat `PayloadRef` (net/payload.h) — a non-owning
// (slab, offset, length) view the engine copies as a span across slab
// lifetimes; receivers resolve it to bytes via Context::payload_bytes().
// Legacy protocols may still ship an owning `std::any` payload. `bytes` is
// the *modelled* wire size of the payload under the configured WireSizes —
// the simulator charges exactly what the protocol specification says the
// message costs, independent of the in-memory representation.
//
// Session tags: traffic produced through the session runtime (net/session.h)
// additionally carries the (session, phase) pair that routes it to the right
// Phase component inside a SessionMux. Untagged traffic — plain protocols,
// engine-internal ACKs — keeps `session == kNoSession`. The tags ride the
// envelope itself (not a nested payload wrapper) so the reliability layer
// retransmits them untouched and send probes can attribute every
// transmission to its session.
#pragma once

#include <any>
#include <cstdint>

#include "common/ids.h"
#include "net/metrics.h"
#include "net/payload.h"
#include "obs/lineage.h"

namespace nf::net {

/// Identifies one protocol session multiplexed over an engine run.
using SessionId = std::uint32_t;
/// Index of a phase within its session's phase list.
using PhaseId = std::uint32_t;

/// Envelope tag for traffic outside any session.
inline constexpr SessionId kNoSession = 0xFFFFFFFFu;

struct Envelope {
  PeerId from;
  PeerId to;
  TrafficCategory category{TrafficCategory::kControl};
  std::uint64_t bytes{0};
  std::any payload;
  /// Flat slab-backed payload (kNoSlab when the message has none). The
  /// engine rewrites this ref at the merge barrier when it copies the span
  /// into the destination transit-ring slot's slab.
  PayloadRef flat;
  SessionId session{kNoSession};
  PhaseId phase{0};
  /// Happened-before node id, stamped by the engine at admission in
  /// canonical merge order (obs/lineage.h). Protocol code reads it via
  /// Context::cause() / PhaseContext::cause(); only the engine writes it.
  /// Stays kNoLineage for ACKs and runs without an obs context.
  obs::LineageId lineage{obs::kNoLineage};
};

}  // namespace nf::net
