// Message envelope carried by the round engine.
//
// Payloads are protocol-defined (`std::any`); the envelope carries the
// routing and accounting fields the engine needs. `bytes` is the *modelled*
// wire size of the payload under the configured WireSizes — the simulator
// charges exactly what the protocol specification says the message costs,
// independent of the in-memory representation.
#pragma once

#include <any>
#include <cstdint>

#include "common/ids.h"
#include "net/metrics.h"

namespace nf::net {

struct Envelope {
  PeerId from;
  PeerId to;
  TrafficCategory category{TrafficCategory::kControl};
  std::uint64_t bytes{0};
  std::any payload;
};

}  // namespace nf::net
