#include "net/topology.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.h"

namespace nf::net {

Topology::Topology(std::uint32_t num_peers) : adjacency_(num_peers) {
  require(num_peers >= 1, "topology needs at least one peer");
}

void Topology::add_edge(PeerId a, PeerId b) {
  require(a.value() < num_peers() && b.value() < num_peers(),
          "edge endpoint out of range");
  require(a != b, "self loops are not allowed");
  require(!has_edge(a, b), "duplicate edge");
  adjacency_[a.value()].push_back(b);
  adjacency_[b.value()].push_back(a);
  ++num_edges_;
}

bool Topology::has_edge(PeerId a, PeerId b) const {
  const auto& na = adjacency_[a.value()];
  return std::find(na.begin(), na.end(), b) != na.end();
}

const std::vector<PeerId>& Topology::neighbors(PeerId p) const {
  require(p.value() < num_peers(), "peer out of range");
  return adjacency_[p.value()];
}

bool Topology::connected() const {
  if (num_peers() <= 1) return true;
  std::vector<bool> seen(num_peers(), false);
  std::queue<PeerId> frontier;
  frontier.push(PeerId(0));
  seen[0] = true;
  std::uint32_t reached = 1;
  while (!frontier.empty()) {
    const PeerId p = frontier.front();
    frontier.pop();
    for (PeerId q : adjacency_[p.value()]) {
      if (!seen[q.value()]) {
        seen[q.value()] = true;
        ++reached;
        frontier.push(q);
      }
    }
  }
  return reached == num_peers();
}

void Topology::validate() const {
  std::size_t directed_edges = 0;
  for (std::uint32_t i = 0; i < num_peers(); ++i) {
    const auto& ns = adjacency_[i];
    directed_edges += ns.size();
    std::vector<PeerId> sorted(ns);
    std::sort(sorted.begin(), sorted.end());
    ensure(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
           "duplicate neighbor entry");
    for (PeerId q : ns) {
      ensure(q != PeerId(i), "self loop");
      ensure(has_edge(q, PeerId(i)), "asymmetric adjacency");
    }
  }
  ensure(directed_edges == 2 * num_edges_, "edge count mismatch");
}

Topology random_tree(std::uint32_t num_peers, std::uint32_t max_children,
                     Rng& rng) {
  require(max_children >= 1, "fan-out must be at least 1");
  Topology topo(num_peers);
  // `open` holds peers that can still accept children. Attaching to a
  // uniformly random open peer yields bushy trees of height ~ log_b N.
  std::vector<std::uint32_t> child_count(num_peers, 0);
  std::vector<PeerId> open;
  open.push_back(PeerId(0));
  for (std::uint32_t i = 1; i < num_peers; ++i) {
    const std::size_t slot = rng.below(open.size());
    const PeerId parent = open[slot];
    topo.add_edge(parent, PeerId(i));
    if (++child_count[parent.value()] >= max_children) {
      open[slot] = open.back();
      open.pop_back();
    }
    open.push_back(PeerId(i));
  }
  return topo;
}

Topology random_connected(std::uint32_t num_peers, double avg_degree,
                          Rng& rng) {
  require(avg_degree >= 2.0 || num_peers <= 2,
          "need average degree >= 2 for a connected graph");
  // Random spanning tree first (uniform attachment), then top up with
  // uniformly random non-duplicate edges.
  Topology topo(num_peers);
  for (std::uint32_t i = 1; i < num_peers; ++i) {
    topo.add_edge(PeerId(static_cast<std::uint32_t>(rng.below(i))), PeerId(i));
  }
  const auto target_edges = static_cast<std::size_t>(
      avg_degree * num_peers / 2.0);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * target_edges + 100;
  while (topo.num_edges() < target_edges && attempts++ < max_attempts) {
    const PeerId a(static_cast<std::uint32_t>(rng.below(num_peers)));
    const PeerId b(static_cast<std::uint32_t>(rng.below(num_peers)));
    if (a == b || topo.has_edge(a, b)) continue;
    topo.add_edge(a, b);
  }
  return topo;
}

Topology watts_strogatz(std::uint32_t num_peers, std::uint32_t k, double beta,
                        Rng& rng) {
  require(k >= 2 && k % 2 == 0, "Watts-Strogatz requires even k >= 2");
  require(num_peers > k, "Watts-Strogatz requires n > k");
  require(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  Topology topo(num_peers);
  // Ring lattice: each peer connects to k/2 clockwise neighbors.
  for (std::uint32_t i = 0; i < num_peers; ++i) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      const PeerId a(i);
      const PeerId b((i + j) % num_peers);
      // Rewire the far endpoint with probability beta.
      if (rng.chance(beta)) {
        PeerId c(static_cast<std::uint32_t>(rng.below(num_peers)));
        int tries = 0;
        while ((c == a || topo.has_edge(a, c)) && tries++ < 32) {
          c = PeerId(static_cast<std::uint32_t>(rng.below(num_peers)));
        }
        if (c != a && !topo.has_edge(a, c)) {
          topo.add_edge(a, c);
          continue;
        }
      }
      if (!topo.has_edge(a, b)) topo.add_edge(a, b);
    }
  }
  return topo;
}

Topology barabasi_albert(std::uint32_t num_peers, std::uint32_t m, Rng& rng) {
  require(m >= 1, "m must be at least 1");
  require(num_peers > m, "Barabasi-Albert requires n > m");
  Topology topo(num_peers);
  // Degree-proportional sampling via the standard repeated-endpoints trick:
  // every edge contributes both endpoints to `endpoints`, so a uniform draw
  // from it is a degree-weighted draw over peers.
  std::vector<PeerId> endpoints;
  // Seed: clique-ish chain over the first m+1 peers.
  for (std::uint32_t i = 0; i < m; ++i) {
    topo.add_edge(PeerId(i), PeerId(i + 1));
    endpoints.push_back(PeerId(i));
    endpoints.push_back(PeerId(i + 1));
  }
  for (std::uint32_t i = m + 1; i < num_peers; ++i) {
    std::vector<PeerId> targets;
    int tries = 0;
    while (targets.size() < m && tries++ < 1000) {
      const PeerId t = endpoints[rng.below(endpoints.size())];
      if (t == PeerId(i)) continue;
      if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;
      }
      targets.push_back(t);
    }
    for (PeerId t : targets) {
      topo.add_edge(PeerId(i), t);
      endpoints.push_back(PeerId(i));
      endpoints.push_back(t);
    }
  }
  return topo;
}

}  // namespace nf::net
