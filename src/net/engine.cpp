#include "net/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/alloc_hook.h"
#include "common/error.h"
#include "common/hashing.h"
#include "obs/clock.h"

namespace nf::net {

// LinkStats sizes its category axis without including net headers; make
// sure every TrafficCategory fits it.
static_assert(kNumTrafficCategories <= obs::LinkStats::kMaxCategories,
              "obs::LinkStats::kMaxCategories too small for TrafficCategory");

std::uint32_t LatencyModel::delay(PeerId a, PeerId b) const {
  if (min_delay == max_delay) return min_delay;
  const std::uint64_t h = link_hash(seed, a, b);
  return min_delay +
         static_cast<std::uint32_t>(h % (max_delay - min_delay + 1));
}

std::uint64_t Context::round() const { return engine_.round(); }

const Overlay& Context::overlay() const { return engine_.overlay(); }

const std::vector<PeerId>& Context::neighbors() const {
  return engine_.overlay().neighbors(self_);
}

bool Context::is_alive(PeerId p) const {
  return engine_.overlay().is_alive(p);
}

PayloadWriter Context::flat_payload() {
  ensure(slab_ != nullptr, "no slab bound to this context");
  return PayloadWriter(*slab_, slab_id_);
}

std::span<const std::uint8_t> Context::payload_bytes(
    const Envelope& env) const {
  return engine_.resolve(env.flat);
}

void Context::push_send(PeerId to, TrafficCategory category,
                        std::uint64_t bytes, std::any payload, PayloadRef flat,
                        SessionId session, PhaseId phase,
                        std::span<const obs::LineageId> parents) {
  KeyedSend ks{major_,
               next_minor_++,
               /*is_ack=*/0,
               protocol_index_,
               /*ack_msg_id=*/0,
               Envelope{self_, to, category, bytes, std::move(payload), flat,
                        session, phase}};
  // First nonzero parent becomes the primary; the rest go to the sampled
  // extra-edge store. Zero ids (round-originated causes) are skipped so
  // callers can push causes unconditionally.
  for (const obs::LineageId p : parents) {
    if (p == obs::kNoLineage) continue;
    if (ks.parent == obs::kNoLineage) {
      ks.parent = p;
    } else if (p != ks.parent) {
      // Only multi-parent merges (convergecast forwards under lineage)
      // reach here; flat steady-state sends carry exactly one parent.
      // nf-lint: nf-cap-noalloc-ok
      ks.extra_parents.push_back(p);
    }
  }
  // The per-shard outbox is cleared at every barrier but never shrunk, so
  // its capacity persists after warm-up (steady_alloc_test is the gate).
  // nf-lint: nf-cap-noalloc-ok
  outbox_->push_back(std::move(ks));
}

void Context::send(PeerId to, TrafficCategory category, std::uint64_t bytes,
                   std::any payload) {
  push_send(to, category, bytes, std::move(payload), PayloadRef{}, kNoSession,
            0, std::span<const obs::LineageId>(&cause_, 1));
}

void Context::send(PeerId to, TrafficCategory category, std::uint64_t bytes,
                   std::any payload,
                   std::span<const obs::LineageId> parents) {
  push_send(to, category, bytes, std::move(payload), PayloadRef{}, kNoSession,
            0, parents);
}

void Context::send_tagged(PeerId to, TrafficCategory category,
                          std::uint64_t bytes, std::any payload,
                          SessionId session, PhaseId phase) {
  push_send(to, category, bytes, std::move(payload), PayloadRef{}, session,
            phase, std::span<const obs::LineageId>(&cause_, 1));
}

void Context::send_tagged(PeerId to, TrafficCategory category,
                          std::uint64_t bytes, std::any payload,
                          SessionId session, PhaseId phase,
                          std::span<const obs::LineageId> parents) {
  push_send(to, category, bytes, std::move(payload), PayloadRef{}, session,
            phase, parents);
}

void Context::send_flat(PeerId to, TrafficCategory category,
                        std::uint64_t bytes, PayloadRef flat) {
  push_send(to, category, bytes, {}, flat, kNoSession, 0,
            std::span<const obs::LineageId>(&cause_, 1));
}

void Context::send_flat(PeerId to, TrafficCategory category,
                        std::uint64_t bytes, PayloadRef flat,
                        std::span<const obs::LineageId> parents) {
  push_send(to, category, bytes, {}, flat, kNoSession, 0, parents);
}

void Context::send_flat_tagged(PeerId to, TrafficCategory category,
                               std::uint64_t bytes, PayloadRef flat,
                               SessionId session, PhaseId phase,
                               std::span<const obs::LineageId> parents) {
  push_send(to, category, bytes, {}, flat, session, phase, parents);
}

Engine::Engine(Overlay& overlay, TrafficMeter& meter)
    : overlay_(overlay), meter_(meter) {
  require(meter.num_peers() == overlay.num_peers(),
          "meter and overlay disagree on peer count");
  transit_ring_.resize(2);  // delay-1 traffic: drain bucket r, fill r+1
  ring_slabs_.resize(2);
}

void Engine::set_threads(std::uint32_t threads) {
  require(threads >= 1, "threads must be >= 1");
  if (threads == threads_) return;
  threads_ = threads;
  pool_.reset();
  // The engine thread drives one shard itself, so K shards need K-1 workers.
  if (threads_ > 1) pool_ = std::make_unique<ShardPool>(threads_ - 1);
}

void Engine::set_latency_model(const LatencyModel& model) {
  // The infinite-capacity special case of the link model: same delays,
  // same seeded per-link draw, no scheduler.
  LinkModel link;
  link.min_delay = model.min_delay;
  link.max_delay = model.max_delay;
  link.seed = model.seed;
  set_link_model(link);
}

void Engine::set_link_model(const LinkModel& model) {
  require(model.min_delay >= 1, "latency must be at least one round");
  require(model.max_delay >= model.min_delay,
          "max_delay must be >= min_delay");
  require(model.max_backlog_rounds >= 1, "max_backlog_rounds must be >= 1");
  require(in_transit_ == 0,
          "cannot change the link model with messages in transit");
  link_ = model;
  link_delay_on_ = model.max_delay > 1;
  link_capacity_on_ = model.capacity_limited();
  // The transit ring must span the farthest admissible delivery offset:
  // max_delay alone for the infinite-capacity path (identical ring
  // geometry to the historical engine — slab offsets and reports stay
  // bit-for-bit), plus the backlog horizon when links can queue.
  const std::size_t span =
      link_capacity_on_
          ? static_cast<std::size_t>(model.max_delay) +
                model.max_backlog_rounds
          : static_cast<std::size_t>(model.max_delay) + 1;
  transit_ring_.assign(std::max<std::size_t>(2, span), {});
  ring_slabs_.assign(transit_ring_.size(), {});
  if (link_capacity_on_) {
    link_queues_.configure(overlay_.num_peers());
  } else {
    link_queues_ = LinkQueueTable{};
  }
}

void Engine::set_fault_model(const LinkFaultModel& model) {
  require(model.loss_probability >= 0.0 && model.loss_probability < 1.0,
          "loss probability must be in [0, 1)");
  require(model.retransmit_after >= 1, "retransmit_after must be >= 1");
  require(model.max_retries >= 1, "max_retries must be >= 1");
  fault_ = model;
  lossy_ = model.loss_probability > 0.0;
}

void Engine::set_obs(obs::Context* obs) {
  obs_ = obs;
  lineage_ = obs != nullptr ? &obs->lineage : nullptr;
  obs_shard_busy_.clear();
  obs_shard_idle_.clear();
  // Overhead bookkeeping is per-attachment: the counters live in the
  // context, the ns accumulators here, so a stale reported watermark from a
  // previous context would make the first delta wrap.
  round_obs_ns_ = 0;
  overhead_ns_total_ = 0;
  overhead_us_reported_ = 0;
  round_ns_total_ = 0;
  round_us_reported_ = 0;
  if (obs == nullptr) {
    obs_sent_ = nullptr;
    obs_delivered_ = nullptr;
    obs_rounds_ = nullptr;
    obs_sent_bytes_ = nullptr;
    obs_msg_bytes_ = nullptr;
    obs_in_flight_ = nullptr;
    obs_steady_allocs_ = nullptr;
    link_stats_ = nullptr;
    obs_overhead_us_ = nullptr;
    obs_round_us_ = nullptr;
    obs_queued_msgs_ = nullptr;
    obs_queue_delay_ = nullptr;
    obs_clamped_bytes_ = nullptr;
    obs_backlog_bytes_ = nullptr;
    return;
  }
  obs_steady_allocs_ = &obs->registry.counter("engine/steady_allocs");
  obs_sent_ = &obs->registry.counter("engine/sent");
  obs_delivered_ = &obs->registry.counter("engine/delivered");
  obs_rounds_ = &obs->registry.counter("engine/rounds");
  obs_sent_bytes_ = &obs->registry.counter("engine/sent_bytes");
  obs_msg_bytes_ = &obs->registry.histogram("engine/msg_bytes");
  obs_in_flight_ = &obs->registry.gauge("engine/in_flight");
  link_stats_ = &obs->link_stats;
  obs_overhead_us_ = &obs->registry.counter("obs/overhead_us");
  obs_round_us_ = &obs->registry.counter("engine/round_us");
  // Link-scheduler telemetry (all zero under infinite capacity).
  obs_queued_msgs_ = &obs->registry.counter("engine/congestion/queued_msgs");
  obs_queue_delay_ =
      &obs->registry.counter("engine/congestion/queue_delay_rounds");
  obs_clamped_bytes_ =
      &obs->registry.counter("engine/congestion/clamped_bytes");
  obs_backlog_bytes_ = &obs->registry.gauge("engine/backlog_bytes");
  // Built-in engine series. Successive engines sharing one context rebind
  // these columns (re-baselining the counters), so deltas keep flowing.
  obs->series.track_counter("engine/sent", obs_sent_);
  obs->series.track_counter("engine/delivered", obs_delivered_);
  obs->series.track_counter("engine/sent_bytes", obs_sent_bytes_);
  obs->series.track_gauge("engine/in_flight", obs_in_flight_);
  obs->series.track_counter("obs/overhead_us", obs_overhead_us_);
  // nf-lint: nf-obs-context-ok (guarded by the early return at the top)
  obs->series.track_counter("engine/round_us", obs_round_us_);
  // nf-lint: nf-obs-context-ok (guarded by the early return at the top)
  obs->series.track_gauge("engine/backlog_bytes", obs_backlog_bytes_);
  // nf-lint: nf-obs-context-ok (guarded by the early return at the top)
  obs->series.track_counter("engine/congestion/queue_delay_rounds",
                            obs_queue_delay_);
}

void Engine::set_send_probe(std::function<void(const Envelope&)> probe) {
  send_probe_ = std::move(probe);
}

std::vector<Engine::Outgoing>& Engine::bucket_at(std::uint64_t round) {
  return transit_ring_[static_cast<std::size_t>(round % transit_ring_.size())];
}

SlabArena& Engine::ring_slab_at(std::uint64_t round) {
  return ring_slabs_[static_cast<std::size_t>(round % ring_slabs_.size())];
}

std::span<const std::uint8_t> Engine::resolve(const PayloadRef& ref) const {
  if (!ref.valid()) return {};
  if (ref.slab >= kRingSlabBase) {
    const std::size_t slot = ref.slab - kRingSlabBase;
    ensure(slot < ring_slabs_.size(), "bad ring slab id");
    return ring_slabs_[slot].view(ref.offset, ref.length);
  }
  ensure(ref.slab < shard_slabs_.size(), "bad shard slab id");
  return shard_slabs_[ref.slab].view(ref.offset, ref.length);
}

void Engine::ack_received(PeerId original_sender, std::uint64_t msg_id) {
  auto& list = pending_by_sender_[original_sender.value()];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].message.msg_id == msg_id) {
      list.erase(list.begin() + i);
      --pending_count_;
      return;
    }
  }
  // Unmatched ACK: a duplicate for a message already acknowledged.
}

void Engine::predispatch(std::span<Protocol* const> protocols,
                         std::vector<Outgoing>& inbox, const ShardPlan& plan) {
  engine_sends_.clear();
  for (auto& sc : shards_) {
    sc.inq.clear();
    sc.outbox.clear();
  }
  // Shard outbox slabs from the previous round were drained into ring-slot
  // slabs at the merge barrier; reclaim them (capacity kept).
  for (auto& slab : shard_slabs_) slab.reset();
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    Outgoing& out = inbox[i];
    // Messages to peers that died in transit are dropped (the network does
    // not buffer for the dead).
    if (!overlay_.is_alive(out.envelope.to)) {
      ++dropped_;
      continue;
    }
    if (out.lost) {
      ++lost_;  // the link ate it; the retransmission timer will cover it
      continue;
    }
    if (out.is_ack) {
      ack_received(out.envelope.to, out.msg_id);
      continue;
    }
    if (lossy_ && out.msg_id != 0) {
      // Acknowledge receipt — even for duplicates, so the sender stops
      // retransmitting. The ACK travels outside any protocol and is itself
      // lossy; it finalizes at this round's barrier with key (i, 0), ahead
      // of anything the handler of message i sends.
      engine_sends_.push_back(Context::KeyedSend{
          static_cast<std::uint64_t>(i), 0, /*is_ack=*/1, out.protocol_index,
          out.msg_id,
          Envelope{out.envelope.to, out.envelope.from,
                   TrafficCategory::kControl, fault_.ack_bytes, {}}});
      // Exactly-once delivery: retransmitted duplicates stop here.
      auto& seen = seen_by_receiver_[out.envelope.to.value()];
      const auto it = std::lower_bound(seen.begin(), seen.end(), out.msg_id);
      if (it != seen.end() && *it == out.msg_id) {
        ++duplicates_;
        continue;
      }
      seen.insert(it, out.msg_id);
    }
    ensure(out.protocol_index < protocols.size(), "bad protocol index");
    // The message will reach its handler this round: mark the delivery in
    // the lineage DAG. Dead-destination drops, link losses and suppressed
    // duplicates return above, so their nodes stay undelivered and never
    // enter critical paths or flow arrows.
    if (lineage_ != nullptr && out.envelope.lineage != obs::kNoLineage) {
      lineage_->delivered(out.envelope.lineage, lineage_clock_);
    }
    shards_[plan.shard_of(out.envelope.to)].inq.push_back(
        Delivery{static_cast<std::uint64_t>(i), std::move(out)});
  }
}

void Engine::run_shard(std::span<Protocol* const> protocols,
                       std::uint32_t shard, const ShardPlan& plan,
                       std::uint64_t tick_base) {
  // Busy wall time is written only to this shard's own slot, so workers
  // never race; the engine thread folds the slots into gauges after the
  // dispatch barrier.
  obs::WallTime t0;
  if (obs_ != nullptr) t0 = obs::wall_now();
  ShardScratch& sc = shards_[shard];
  for (Delivery& d : sc.inq) {
    if (obs_ != nullptr) obs_delivered_->add(1);
    Context ctx(*this, d.out.envelope.to, d.out.protocol_index, &sc.outbox,
                &shard_slabs_[shard], shard,
                /*major=*/d.index, /*first_minor=*/1,
                /*cause=*/d.out.envelope.lineage);
    protocols[d.out.protocol_index]->on_message(ctx,
                                                std::move(d.out.envelope));
  }
  const std::uint64_t num_peers = overlay_.num_peers();
  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    for (std::uint32_t peer = plan.begin(shard); peer < plan.end(shard);
         ++peer) {
      if (!overlay_.is_alive(PeerId(peer))) continue;
      Context ctx(*this, PeerId(peer), pi, &sc.outbox, &shard_slabs_[shard],
                  shard,
                  /*major=*/tick_base + pi * num_peers + peer,
                  /*first_minor=*/0, /*cause=*/obs::kNoLineage);
      protocols[pi]->on_round(ctx);
    }
  }
  if (obs_ != nullptr) shard_busy_us_[shard] += obs::elapsed_us(t0);
}

void Engine::admit(Outgoing&& out, std::span<const std::uint8_t> flat_bytes) {
  // One loss draw per transmission from a counter-keyed hash stream; the
  // decision is made at admission (canonical order) and applied at
  // delivery, so it is independent of the shard count.
  if (lossy_) {
    out.lost = hash_uniform(next_transmission_++, fault_.seed) <
               fault_.loss_probability;
  }
  std::uint32_t d = 1;
  if (link_delay_on_) d = link_.delay(out.envelope.from, out.envelope.to);
  // Link scheduler: behind a backlog, the message spends extra transfer
  // rounds beyond its propagation delay. Admissions run on the engine
  // thread in canonical (major, minor) order, so the per-link queue state
  // — and with it every delivery round — is identical for any shard count.
  if (link_capacity_on_) {
    const std::uint64_t cap =
        link_.capacity(out.envelope.from, out.envelope.to);
    if (cap != kInfiniteCapacity) {
      const std::uint32_t level =
          link_stats_ != nullptr
              ? static_cast<std::uint32_t>(link_stats_->level_of_link(
                    out.envelope.from.value(), out.envelope.to.value()))
              : ~0u;
      const LinkQueueTable::Scheduled sched = link_queues_.schedule(
          out.envelope.from, out.envelope.to, cap, out.envelope.bytes,
          link_.max_backlog_rounds, level);
      if (sched.queue_rounds > 1) {
        ++queued_msgs_;
        queue_delay_rounds_ += sched.queue_rounds - 1;
        if (obs_ != nullptr) {
          obs_queued_msgs_->add(1);
          obs_queue_delay_->add(sched.queue_rounds - 1);
        }
        // The whole message waited behind the backlog: charge it to the
        // congestion spill summary so `nf-inspect congestion` can rank the
        // links the queueing gates on.
        if (link_stats_ != nullptr) {
          link_stats_->charge_spill(out.envelope.from.value(),
                                    out.envelope.to.value(),
                                    out.envelope.bytes);
        }
        d += static_cast<std::uint32_t>(sched.queue_rounds - 1);
      }
      if (sched.clamped_bytes != 0) {
        clamped_bytes_ += sched.clamped_bytes;
        if (obs_ != nullptr) obs_clamped_bytes_->add(sched.clamped_bytes);
      }
    }
  }
  // Park the payload span in the delivery slot's slab and rewrite the ref.
  // Admissions happen in canonical order on the engine thread, so slot-slab
  // offsets are identical for any shard count.
  if (out.envelope.flat.valid()) {
    const std::uint64_t slot = (round_ + d) % ring_slabs_.size();
    out.envelope.flat =
        copy_to_slab(ring_slabs_[static_cast<std::size_t>(slot)],
                     kRingSlabBase + static_cast<std::uint32_t>(slot),
                     flat_bytes);
  }
  if (send_probe_) send_probe_(out.envelope);
  // Delivery-ring buckets are cleared per round but never shrunk; capacity
  // persists after warm-up (steady_alloc_test is the runtime gate).
  // nf-lint: nf-cap-noalloc-ok
  bucket_at(round_ + d).push_back(std::move(out));
  ++in_transit_;
}

void Engine::drain_link_queues() {
  // Round barrier: every backlogged link clears up to its capacity. The
  // walk is engine-thread sequential over state built in canonical
  // admission order, so backlog trajectories — and the gauges fed from
  // them — are identical for any shard count.
  if (link_stats_ != nullptr) {
    const std::size_t rows =
        static_cast<std::size_t>(link_stats_->num_levels()) + 1;
    backlog_by_level_.assign(rows, 0);
    backlog_bytes_ = link_queues_.drain_round(
        [this, rows](std::uint32_t level, std::uint64_t bytes) {
          const std::size_t row = level < rows ? level : rows - 1;
          backlog_by_level_[row] += bytes;
        });
    // Publish every level every round (a cleared level must fall back to
    // 0, not hold its peak).
    for (std::size_t row = 0; row + 1 < rows; ++row) {
      link_stats_->set_backlog(row, backlog_by_level_[row]);
    }
  } else {
    backlog_bytes_ =
        link_queues_.drain_round([](std::uint32_t, std::uint64_t) {});
  }
  if (obs_ != nullptr) {
    obs_backlog_bytes_->set(static_cast<double>(backlog_bytes_));
  }
}

void Engine::begin_steady_state() {
  steady_ = true;
  // Snap every ring slot to the ring-wide high-water mark. Warm-up runs
  // only grow the slots their round parities happened to use; without this,
  // the first steady run whose heavy round lands on a colder slot would
  // regrow it and show up as a spurious steady-state allocation.
  // inbox_scratch_ joins the pool: delivery swaps its storage with the
  // drained bucket's, so capacities rotate through buckets AND scratch.
  std::size_t slab_cap = 0;
  std::size_t bucket_cap = inbox_scratch_.capacity();
  for (const auto& s : ring_slabs_) slab_cap = std::max(slab_cap, s.capacity());
  for (const auto& b : transit_ring_) {
    bucket_cap = std::max(bucket_cap, b.capacity());
  }
  for (auto& s : ring_slabs_) s.reserve(slab_cap);
  for (auto& b : transit_ring_) b.reserve(bucket_cap);
  inbox_scratch_.reserve(bucket_cap);
}

void Engine::merge_and_finalize() {
  merge_scratch_.clear();
  std::size_t total = engine_sends_.size();
  for (const auto& sc : shards_) total += sc.outbox.size();
  merge_scratch_.reserve(total);
  for (auto& ks : engine_sends_) merge_scratch_.push_back(std::move(ks));
  for (auto& sc : shards_) {
    for (auto& ks : sc.outbox) merge_scratch_.push_back(std::move(ks));
  }
  // Canonical order. Keys are unique (ACKs take minor 0 of their delivery
  // slot, handler sends start at 1), so this is a total order identical to
  // the serial engine's send order.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Context::KeyedSend& a, const Context::KeyedSend& b) {
              return a.major != b.major ? a.major < b.major
                                        : a.minor < b.minor;
            });

  // Topology telemetry: charge every send of this round — per-level byte/
  // message matrix, per-level series counters and the heavy-hitter link
  // summary — in the canonical order just established, before finalize
  // moves the envelopes. Feeding ONE summary here on the engine thread is
  // what keeps the Misra-Gries state bit-identical for any shard count
  // (a per-shard fold would be merge-order sensitive). Timed: this pass is
  // the telemetry plane's marginal cost, so it bills to the overhead meter.
  if (link_stats_ != nullptr) {
    const obs::WallTime t0 = obs::wall_now();
    for (const Context::KeyedSend& ks : merge_scratch_) {
      link_stats_->charge(ks.envelope.from.value(), ks.envelope.to.value(),
                          static_cast<std::size_t>(ks.envelope.category),
                          ks.envelope.bytes);
    }
    round_obs_ns_ += obs::elapsed_ns(t0);
  }

  // Finalize in order: meter charges are batched per (sender, category)
  // run so a fan-out to many destinations costs one meter update per
  // batch, not per message.
  PeerId batch_from{};
  TrafficCategory batch_cat{};
  std::uint64_t batch_bytes = 0;
  std::uint64_t batch_msgs = 0;
  const auto flush = [&] {
    if (batch_msgs != 0) {
      meter_.record_batch(batch_from, batch_cat, batch_bytes, batch_msgs);
      batch_bytes = 0;
      batch_msgs = 0;
    }
  };
  for (auto& ks : merge_scratch_) {
    if (batch_msgs != 0 && (ks.envelope.from != batch_from ||
                            ks.envelope.category != batch_cat)) {
      flush();
    }
    batch_from = ks.envelope.from;
    batch_cat = ks.envelope.category;
    batch_bytes += ks.envelope.bytes;
    ++batch_msgs;
    if (obs_ != nullptr) {
      obs_sent_->add(1);
      obs_sent_bytes_->add(ks.envelope.bytes);
      obs_msg_bytes_->observe(ks.envelope.bytes);
    }
    // Stamp the lineage id here, in canonical order, so ids are identical
    // for any shard count. ACKs are engine bookkeeping and stay unstamped;
    // retransmissions re-admit the pristine Pending copy, which keeps the
    // id assigned at first admission.
    if (lineage_ != nullptr && ks.is_ack == 0) {
      const obs::LineageId id = lineage_->admit(
          ks.parent, ks.envelope.from, ks.envelope.to, ks.envelope.session,
          ks.envelope.phase, ks.envelope.bytes, lineage_clock_);
      ks.envelope.lineage = id;
      for (const obs::LineageId p : ks.extra_parents) lineage_->link(id, p);
    }
    Outgoing out{ks.protocol_index, std::move(ks.envelope),
                 /*msg_id=*/0, ks.is_ack != 0, /*lost=*/false};
    // The producing shard's slab holds the payload until this barrier;
    // admit() copies the span into the delivery slot's slab.
    const std::span<const std::uint8_t> flat_bytes = resolve(out.envelope.flat);
    if (out.is_ack) {
      out.msg_id = ks.ack_msg_id;
    } else if (lossy_) {
      // Register for retransmission until acknowledged. The pending copy
      // stays pristine (lost is drawn per transmission in admit()) and owns
      // its payload bytes — slab refs don't survive the round.
      out.msg_id = next_msg_id_++;
      auto& plist = pending_by_sender_[out.envelope.from.value()];
      // Lossy runs only; the loss-free warmed steady state (what
      // NF_STEADY_NOALLOC gates) never enters this branch.
      // nf-lint: nf-cap-noalloc-ok
      plist.push_back(
          Pending{out, round_ + fault_.retransmit_after, /*attempts=*/1});
      plist.back().flat_bytes.assign(flat_bytes.begin(), flat_bytes.end());
      ++pending_count_;
    }
    admit(std::move(out), flat_bytes);
  }
  flush();
}

void Engine::scan_retransmissions() {
  if (!lossy_ || pending_count_ == 0) return;
  // Deterministic order: senders in id order, each sender's unacked
  // messages in send (= msg id) order.
  for (auto& list : pending_by_sender_) {
    for (std::size_t i = 0; i < list.size();) {
      Pending& p = list[i];
      if (p.next_retry > round_) {
        ++i;
        continue;
      }
      if (p.attempts > fault_.max_retries) {
        ++given_up_;
        --pending_count_;
        list.erase(list.begin() + i);
        continue;
      }
      ++p.attempts;
      ++retransmissions_;
      p.next_retry = round_ + fault_.retransmit_after;
      meter_.record(p.message.envelope.from, p.message.envelope.category,
                    p.message.envelope.bytes);
      // Retransmissions re-cross the link: charge them like the meter does.
      // This loop is already deterministic (sender id, then msg id order).
      if (link_stats_ != nullptr) {
        link_stats_->charge(
            p.message.envelope.from.value(), p.message.envelope.to.value(),
            static_cast<std::size_t>(p.message.envelope.category),
            p.message.envelope.bytes);
      }
      // Copy; the pending entry keeps the original. The payload travels as
      // the pending entry's owned span, never as a reconstructed object.
      admit(Outgoing{p.message}, std::span<const std::uint8_t>(p.flat_bytes));
      ++i;
    }
  }
}

std::uint64_t Engine::run(Protocol& protocol, std::uint64_t max_rounds,
                          const ChurnSchedule* schedule) {
  Protocol* p = &protocol;
  return run(std::span<Protocol* const>(&p, 1), max_rounds, schedule);
}

std::uint64_t Engine::run(std::span<Protocol* const> protocols,
                          std::uint64_t max_rounds,
                          const ChurnSchedule* schedule) {
  require(!protocols.empty(), "need at least one protocol");
  const std::uint64_t start_round = round_;
  const ShardPlan plan(overlay_.num_peers(), threads_);
  shards_.resize(plan.num_shards());
  shard_slabs_.resize(plan.num_shards());
  // Built once per run (not per round): a per-round std::function conversion
  // can heap-allocate, which the steady-state gate would count.
  std::function<void(std::uint32_t)> shard_task;
  if (pool_ != nullptr && plan.num_shards() > 1) {
    shard_task = [this, protocols, &plan](std::uint32_t k) {
      run_shard(protocols, k, plan, tick_base_);
    };
  }
  if (obs_ != nullptr) {
    // Cumulative busy/idle wall-time gauges, one pair per shard. Only the
    // busy series is sampled per round (idle follows from the round wall
    // time); handles are looked up once per run, never per round.
    obs_shard_busy_.clear();
    obs_shard_idle_.clear();
    for (std::uint32_t k = 0; k < plan.num_shards(); ++k) {
      const std::string base = "engine/shard" + std::to_string(k) + "/";
      // This IS the hoist: one lookup per shard per run, cached below.
      obs::Gauge* busy = &obs_->registry.gauge(base + "busy_us");  // nf-lint: nf-obs-context-ok
      obs_->series.track_gauge(base + "busy_us", busy);
      obs_shard_busy_.push_back(busy);
      obs_shard_idle_.push_back(&obs_->registry.gauge(base + "idle_us"));  // nf-lint: nf-obs-context-ok
    }
    shard_busy_us_.assign(plan.num_shards(), 0);
  }
  if (lossy_) {
    pending_by_sender_.resize(overlay_.num_peers());
    seen_by_receiver_.resize(overlay_.num_peers());
  }
  if (lineage_ != nullptr) {
    // Window the lineage analysis on this run: record the pre-run clock
    // (deliveries during round r carry clock base + r + 1, so relative
    // rounds start at 1) and the first node id this run will admit.
    lineage_->mark_run_start(obs_->tracer.clock());
  }
  for (Protocol* p : protocols) p->on_run_start(overlay_);
  for (std::uint64_t executed = 0; executed < max_rounds; ++executed) {
    const std::uint64_t allocs_at_round_start = alloc_hook::count();
    // 0. Stamp the round boundary: advance the tracer's logical clock so
    // every event recorded during this round carries it. round_t0 doubles
    // as the whole-round wall anchor for the self-overhead meter.
    obs::WallTime round_t0{};
    if (obs_ != nullptr) {
      round_t0 = obs::wall_now();
      round_obs_ns_ = 0;
      obs_->tracer.advance_clock();
      obs_rounds_->add(1);
      obs_->tracer.record(obs::EventKind::kRound, "engine.round",
                          obs::kNoPeer, bucket_at(round_).size());
      lineage_clock_ = obs_->tracer.clock();
      round_obs_ns_ += obs::elapsed_ns(round_t0);
    }

    // 1. Apply churn scheduled for this round.
    if (schedule != nullptr) {
      for (const auto& event : schedule->events_at(round_)) {
        switch (event.type) {
          case ChurnEventType::kFail: overlay_.fail(event.peer); break;
          case ChurnEventType::kJoin: overlay_.revive(event.peer); break;
        }
      }
    }

    // 2. Whole-round protocol bookkeeping, engine thread.
    for (Protocol* p : protocols) p->on_round_begin(round_);

    // 3. Predispatch this round's arrivals: drops, loss, ACK accounting and
    // duplicate suppression happen here on the engine thread; survivors are
    // routed to the destination peer's shard tagged with their inbox index.
    // Swap (not move) the bucket with a reusable scratch vector so neither
    // side loses its capacity — a move would steal it and force the bucket
    // to regrow every ring lap.
    inbox_scratch_.clear();
    std::swap(inbox_scratch_, bucket_at(round_));
    in_transit_ -= inbox_scratch_.size();
    tick_base_ = static_cast<std::uint64_t>(inbox_scratch_.size());
    predispatch(protocols, inbox_scratch_, plan);

    // 4. Parallel phase: deliver + tick each shard's peers.
    obs::WallTime par_start;
    if (obs_ != nullptr) {
      std::fill(shard_busy_us_.begin(), shard_busy_us_.end(), 0);
      par_start = obs::wall_now();
    }
    if (shard_task) {
      pool_->dispatch(plan.num_shards(), shard_task);
    } else {
      for (std::uint32_t k = 0; k < plan.num_shards(); ++k) {
        run_shard(protocols, k, plan, tick_base_);
      }
    }
    if (obs_ != nullptr) {
      // Idle is this round's parallel-phase wall time minus the shard's own
      // busy time — on the serial path it measures head-of-line waiting.
      const obs::WallTime fold_t0 = obs::wall_now();
      const std::uint64_t wall = obs::elapsed_us(par_start);
      for (std::uint32_t k = 0; k < plan.num_shards(); ++k) {
        const std::uint64_t busy = shard_busy_us_[k];
        obs_shard_busy_[k]->set(obs_shard_busy_[k]->value() +
                                static_cast<double>(busy));
        obs_shard_idle_[k]->set(obs_shard_idle_[k]->value() +
                                static_cast<double>(wall > busy ? wall - busy
                                                                : 0));
      }
      round_obs_ns_ += obs::elapsed_ns(fold_t0);
    }

    // 5. Barrier merge: order every send canonically, charge the meter,
    // admit to the network. Sends made during round r travel from r+1 on.
    merge_and_finalize();

    // 6. Reliability layer: resend what was not acknowledged in time.
    scan_retransmissions();

    // 6a-pre. Link scheduler: every backlogged link drains one round of
    // capacity; per-level backlog gauges are published before the series
    // sample below closes the round.
    if (link_capacity_on_) drain_link_queues();

    // 6a. This round's delivery slot is fully consumed (handlers ran, the
    // merge only filled future slots), so its payload slab can be reclaimed.
    // High-water-mark reset: capacity survives for the slot's next lap.
    ring_slab_at(round_).reset();

    // 6b. Close the round's series row. The stamp is the tracer's logical
    // clock (context-global), so series from the several engines a
    // netFilter run creates stay strictly increasing.
    if (obs_ != nullptr) {
      const obs::WallTime t0 = obs::wall_now();
      obs_in_flight_->set(static_cast<double>(in_transit_));
      obs_->series.sample(obs_->tracer.clock());
      round_obs_ns_ += obs::elapsed_ns(t0);
      // Self-overhead meter: block times accumulate as nanoseconds (any
      // single block is well under 1µs) and the counters advance by whole
      // microseconds with the remainder carried, so nothing is lost to
      // per-round rounding. `obs/overhead_us` / `engine/round_us` is the
      // fraction nf-inspect's overhead budget gates.
      overhead_ns_total_ += round_obs_ns_;
      const std::uint64_t oh_us = overhead_ns_total_ / 1000;
      obs_overhead_us_->add(oh_us - overhead_us_reported_);
      overhead_us_reported_ = oh_us;
      round_ns_total_ += obs::elapsed_ns(round_t0);
      const std::uint64_t rd_us = round_ns_total_ / 1000;
      obs_round_us_->add(rd_us - round_us_reported_);
      round_us_reported_ = rd_us;
    }

    // 6c. Steady-state allocation accounting (begin_steady_state()). Zero
    // for a warmed loss-free flat-payload run; any regression shows up in
    // steady_allocs() and the obs counter.
    if (steady_) {
      const std::uint64_t delta = alloc_hook::count() - allocs_at_round_start;
      steady_allocs_ += delta;
      if (obs_steady_allocs_ != nullptr && delta != 0) {
        obs_steady_allocs_->add(delta);
      }
    }

    ++round_;

    // 7. Quiescence check. Under the fault model, unacknowledged messages
    // keep the engine alive until they are delivered or given up on.
    const bool any_active =
        std::any_of(protocols.begin(), protocols.end(),
                    [](const Protocol* p) { return p->active(); });
    if (in_transit_ == 0 && !any_active && pending_count_ == 0) break;
  }
  for (Protocol* p : protocols) p->on_run_end();
  return round_ - start_round;
}

}  // namespace nf::net
