#include "net/engine.h"

#include <algorithm>

#include "common/error.h"

namespace nf::net {

std::uint64_t Context::round() const { return engine_.round(); }

const Overlay& Context::overlay() const { return engine_.overlay(); }

const std::vector<PeerId>& Context::neighbors() const {
  return engine_.overlay().neighbors(self_);
}

bool Context::is_alive(PeerId p) const {
  return engine_.overlay().is_alive(p);
}

void Context::send(PeerId to, TrafficCategory category, std::uint64_t bytes,
                   std::any payload) {
  engine_.meter().record(self_, category, bytes);
  engine_.enqueue(protocol_index_,
                  Envelope{self_, to, category, bytes, std::move(payload)});
}

Engine::Engine(Overlay& overlay, TrafficMeter& meter)
    : overlay_(overlay), meter_(meter) {
  require(meter.num_peers() == overlay.num_peers(),
          "meter and overlay disagree on peer count");
}

void Engine::set_latency_model(const LatencyModel& model) {
  require(model.min_delay >= 1, "latency must be at least one round");
  require(model.max_delay >= model.min_delay,
          "max_delay must be >= min_delay");
  latency_ = model;
  latency_on_ = model.max_delay > 1;
}

void Engine::set_fault_model(const LinkFaultModel& model) {
  require(model.loss_probability >= 0.0 && model.loss_probability < 1.0,
          "loss probability must be in [0, 1)");
  require(model.retransmit_after >= 1, "retransmit_after must be >= 1");
  require(model.max_retries >= 1, "max_retries must be >= 1");
  fault_ = model;
  lossy_ = model.loss_probability > 0.0;
  fault_rng_.reseed(model.seed);
}

void Engine::set_obs(obs::Context* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    obs_sent_ = nullptr;
    obs_delivered_ = nullptr;
    obs_rounds_ = nullptr;
    obs_msg_bytes_ = nullptr;
    return;
  }
  obs_sent_ = &obs->registry.counter("engine/sent");
  obs_delivered_ = &obs->registry.counter("engine/delivered");
  obs_rounds_ = &obs->registry.counter("engine/rounds");
  obs_msg_bytes_ = &obs->registry.histogram("engine/msg_bytes");
}

void Engine::enqueue(std::size_t protocol_index, Envelope&& env) {
  if (obs_ != nullptr) {
    obs_sent_->add(1);
    obs_msg_bytes_->observe(env.bytes);
  }
  Outgoing out{protocol_index, std::move(env), 0, false, PeerId(0)};
  if (lossy_) {
    // Register for retransmission until acknowledged.
    out.msg_id = next_msg_id_++;
    pending_.emplace(
        out.msg_id,
        Pending{out, round_ + fault_.retransmit_after, /*attempts=*/1});
  }
  if (latency_on_) {
    const std::uint32_t d =
        latency_.delay(out.envelope.from, out.envelope.to);
    if (d > 1) {
      // Sends of round r with delay d arrive at round r + d; the outbox
      // covers d == 1.
      delayed_[round_ + d].push_back(std::move(out));
      return;
    }
  }
  outbox_.push_back(std::move(out));
}

void Engine::deliver(std::span<Protocol* const> protocols, Outgoing&& out) {
  if (!overlay_.is_alive(out.envelope.to)) {
    ++dropped_;
    return;
  }
  if (lossy_ && fault_rng_.chance(fault_.loss_probability)) {
    ++lost_;  // the link ate it; the retransmission timer will cover it
    return;
  }
  if (out.is_ack) {
    pending_.erase(out.msg_id);
    return;
  }
  if (lossy_ && out.msg_id != 0) {
    // Acknowledge receipt (the ACK itself is lossy too). The ACK travels
    // outside any protocol: protocol_index is irrelevant for is_ack.
    meter_.record(out.envelope.to, TrafficCategory::kControl,
                  fault_.ack_bytes);
    Outgoing ack{out.protocol_index,
                 Envelope{out.envelope.to, out.envelope.from,
                          TrafficCategory::kControl, fault_.ack_bytes, {}},
                 out.msg_id, true, out.envelope.from};
    outbox_.push_back(std::move(ack));
    // Exactly-once delivery: retransmitted duplicates stop here.
    if (!seen_.insert(out.msg_id).second) {
      ++duplicates_;
      return;
    }
  }
  ensure(out.protocol_index < protocols.size(), "bad protocol index");
  if (obs_ != nullptr) obs_delivered_->add(1);
  Context ctx(*this, out.envelope.to, out.protocol_index);
  protocols[out.protocol_index]->on_message(ctx, std::move(out.envelope));
}

void Engine::scan_retransmissions() {
  if (!lossy_ || pending_.empty()) return;
  // Deterministic order: collect due ids, sort, resend.
  std::vector<std::uint64_t> due;
  for (const auto& [id, p] : pending_) {
    if (p.next_retry <= round_) due.push_back(id);
  }
  std::sort(due.begin(), due.end());
  for (std::uint64_t id : due) {
    auto it = pending_.find(id);
    Pending& p = it->second;
    if (p.attempts > fault_.max_retries) {
      ++given_up_;
      pending_.erase(it);
      continue;
    }
    ++p.attempts;
    ++retransmissions_;
    p.next_retry = round_ + fault_.retransmit_after;
    meter_.record(p.message.envelope.from, p.message.envelope.category,
                  p.message.envelope.bytes);
    outbox_.push_back(p.message);  // copy; pending_ keeps the original
  }
}

std::uint64_t Engine::run(Protocol& protocol, std::uint64_t max_rounds,
                          const ChurnSchedule* schedule) {
  Protocol* p = &protocol;
  return run(std::span<Protocol* const>(&p, 1), max_rounds, schedule);
}

std::uint64_t Engine::run(std::span<Protocol* const> protocols,
                          std::uint64_t max_rounds,
                          const ChurnSchedule* schedule) {
  require(!protocols.empty(), "need at least one protocol");
  const std::uint64_t start_round = round_;
  for (std::uint64_t executed = 0; executed < max_rounds; ++executed) {
    // 0. Stamp the round boundary: advance the tracer's logical clock so
    // every event recorded during this round carries it.
    if (obs_ != nullptr) {
      obs_->tracer.advance_clock();
      obs_rounds_->add(1);
      obs_->tracer.record(obs::EventKind::kRound, "engine.round",
                          obs::kNoPeer, in_flight_.size());
    }

    // 1. Apply churn scheduled for this round.
    if (schedule != nullptr) {
      for (const auto& event : schedule->events_at(round_)) {
        switch (event.type) {
          case ChurnEventType::kFail: overlay_.fail(event.peer); break;
          case ChurnEventType::kJoin: overlay_.revive(event.peer); break;
        }
      }
    }

    // 2. Deliver messages sent last round. Messages to peers that died in
    // the meantime are dropped (the network does not buffer for the dead).
    std::vector<Outgoing> inbox;
    inbox.swap(in_flight_);
    if (latency_on_) {
      const auto due = delayed_.find(round_);
      if (due != delayed_.end()) {
        for (auto& out : due->second) inbox.push_back(std::move(out));
        delayed_.erase(due);
      }
    }
    for (auto& out : inbox) {
      deliver(protocols, std::move(out));
    }

    // 3. Reliability layer: resend what was not acknowledged in time.
    scan_retransmissions();

    // 4. Per-round tick for every alive peer, every protocol.
    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      for (std::uint32_t peer = 0; peer < overlay_.num_peers(); ++peer) {
        if (!overlay_.is_alive(PeerId(peer))) continue;
        Context ctx(*this, PeerId(peer), pi);
        protocols[pi]->on_round(ctx);
      }
    }

    // 5. Sends made during this round travel next round.
    in_flight_.swap(outbox_);
    outbox_.clear();
    ++round_;

    // 6. Quiescence check. Under the fault model, unacknowledged messages
    // keep the engine alive until they are delivered or given up on.
    const bool any_active =
        std::any_of(protocols.begin(), protocols.end(),
                    [](const Protocol* p) { return p->active(); });
    if (in_flight_.empty() && !any_active && pending_.empty() &&
        delayed_.empty()) {
      break;
    }
  }
  return round_ - start_round;
}

}  // namespace nf::net
