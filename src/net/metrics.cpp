#include "net/metrics.h"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "common/error.h"

namespace nf::net {

TrafficMeter::TrafficMeter(std::uint32_t num_peers) : per_peer_(num_peers) {}

void TrafficMeter::record(PeerId sender, TrafficCategory category,
                          std::uint64_t bytes) {
  require(sender.value() < per_peer_.size(), "sender out of range");
  const auto c = static_cast<std::size_t>(category);
  per_peer_[sender.value()][c] += bytes;
  totals_[c] += bytes;
  ++num_messages_;
}

void TrafficMeter::record_batch(PeerId sender, TrafficCategory category,
                                std::uint64_t bytes,
                                std::uint64_t num_messages) {
  require(sender.value() < per_peer_.size(), "sender out of range");
  const auto c = static_cast<std::size_t>(category);
  per_peer_[sender.value()][c] += bytes;
  totals_[c] += bytes;
  num_messages_ += num_messages;
}

std::uint64_t TrafficMeter::total(TrafficCategory category) const {
  return totals_[static_cast<std::size_t>(category)];
}

std::uint64_t TrafficMeter::total() const {
  return std::accumulate(totals_.begin(), totals_.end(), std::uint64_t{0});
}

double TrafficMeter::per_peer(TrafficCategory category) const {
  return static_cast<double>(total(category)) /
         static_cast<double>(per_peer_.size());
}

double TrafficMeter::per_peer() const {
  return static_cast<double>(total()) / static_cast<double>(per_peer_.size());
}

std::uint64_t TrafficMeter::peer_total(PeerId p) const {
  require(p.value() < per_peer_.size(), "peer out of range");
  const auto& row = per_peer_[p.value()];
  return std::accumulate(row.begin(), row.end(), std::uint64_t{0});
}

std::uint64_t TrafficMeter::max_peer_total() const {
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < per_peer_.size(); ++i) {
    best = std::max(best, peer_total(PeerId(static_cast<std::uint32_t>(i))));
  }
  return best;
}

const TrafficMeter::CategoryArray& TrafficMeter::per_peer_breakdown(
    PeerId p) const {
  require(p.value() < per_peer_.size(), "peer out of range");
  return per_peer_[p.value()];
}

void TrafficMeter::write_csv(std::ostream& os) const {
  os << "peer";
  for (std::size_t c = 0; c < kNumTrafficCategories; ++c) {
    os << ',' << to_string(static_cast<TrafficCategory>(c));
  }
  os << ",total\n";
  for (std::size_t p = 0; p < per_peer_.size(); ++p) {
    const PeerId id(static_cast<std::uint32_t>(p));
    os << p;
    for (const std::uint64_t bytes : per_peer_[p]) os << ',' << bytes;
    os << ',' << peer_total(id) << '\n';
  }
  os << "total";
  for (const std::uint64_t bytes : totals_) os << ',' << bytes;
  os << ',' << total() << '\n';
}

void TrafficMeter::reset() {
  for (auto& row : per_peer_) row.fill(0);
  totals_.fill(0);
  num_messages_ = 0;
}

}  // namespace nf::net
