// Bounded flooding over the overlay.
//
// The hierarchy-free protocols (gossip-based netFilter) need a way to put
// one payload on every peer without a tree: classic P2P flooding. The
// originator sends to all neighbors; every peer forwards the first copy it
// sees to all neighbors except the one it came from, up to a TTL.
// Duplicate suppression is by a per-peer seen flag, so each peer processes
// the payload exactly once while each overlay edge carries it at most
// twice (once per direction, worst case).
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/engine.h"

namespace nf::net {

/// Shard-safe: the seen flags are a byte arena written only by the owning
/// peer's callbacks; the reach/copy tallies are commutative atomics.
template <typename T>
class Flood final : public Protocol {
 public:
  using ReceiveFn = std::function<void(PeerId, const T&)>;

  /// `ttl` bounds propagation depth (hops from the originator); use a value
  /// at least the overlay diameter for full coverage.
  Flood(PeerId originator, T payload, std::uint64_t wire_bytes,
        TrafficCategory category, std::uint32_t ttl, ReceiveFn on_receive)
      : originator_(originator),
        payload_(std::move(payload)),
        wire_bytes_(wire_bytes),
        category_(category),
        ttl_(ttl),
        on_receive_(std::move(on_receive)) {
    require(ttl >= 1, "flood needs ttl >= 1");
  }

  void on_run_start(const Overlay& overlay) override {
    if (seen_.empty()) seen_.assign(overlay.num_peers(), false);
  }

  void on_round(Context& ctx) override {
    const PeerId self = ctx.self();
    if (self != originator_ || seen_[self.value()]) return;
    seen_[self.value()] = true;
    num_reached_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(self, payload_);
    forward(ctx, ttl_, self);
  }

  void on_message(Context& ctx, Envelope&& env) override {
    const PeerId self = ctx.self();
    auto* msg = std::any_cast<std::pair<std::uint32_t, T>>(&env.payload);
    ensure(msg != nullptr, "flood payload type mismatch");
    num_copies_.fetch_add(1, std::memory_order_relaxed);
    if (seen_[self.value()]) return;  // duplicate
    seen_[self.value()] = true;
    num_reached_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(self, msg->second);
    if (msg->first > 0) forward(ctx, msg->first, env.from);
  }

  [[nodiscard]] bool active() const override {
    // Flood has no natural completion signal a peer could observe; the
    // engine drains in-flight copies and stops.
    return num_reached() == 0;
  }

  /// Peers that have processed the payload.
  [[nodiscard]] std::uint32_t num_reached() const {
    return num_reached_.load(std::memory_order_relaxed);
  }

  /// Total copies received, including suppressed duplicates.
  [[nodiscard]] std::uint64_t num_copies() const {
    return num_copies_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool reached(PeerId p) const {
    return p.value() < seen_.size() && seen_[p.value()];
  }

 private:
  void forward(Context& ctx, std::uint32_t ttl, PeerId except) {
    for (PeerId q : ctx.neighbors()) {
      if (q == except) continue;
      ctx.send(q, category_, wire_bytes_,
               std::any(std::pair<std::uint32_t, T>(ttl - 1, payload_)));
    }
  }

  PeerId originator_;
  T payload_;
  std::uint64_t wire_bytes_;
  TrafficCategory category_;
  std::uint32_t ttl_;
  ReceiveFn on_receive_;
  PeerArena<bool> seen_;
  std::atomic<std::uint32_t> num_reached_{0};
  std::atomic<std::uint64_t> num_copies_{0};
};

}  // namespace nf::net
