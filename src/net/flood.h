// Bounded flooding over the overlay.
//
// The hierarchy-free protocols (gossip-based netFilter) need a way to put
// one payload on every peer without a tree: classic P2P flooding. The
// originator sends to all neighbors; every peer forwards the first copy it
// sees to all neighbors except the one it came from, up to a TTL.
// Duplicate suppression is by a per-peer seen flag, so each peer processes
// the payload exactly once while each overlay edge carries it at most
// twice (once per direction, worst case).
//
// FloodPhase is the session-runtime component (net/session.h): the flood
// can ride one phase of a multiplexed session (e.g. a query announcement)
// while other sessions run concurrently. Flood is the classic standalone
// protocol, now a thin shim wrapping one phase in an anonymous session.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/capability.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/codec.h"
#include "net/session.h"

namespace nf::net {

/// Shard-safe: the seen flags are a byte arena written only by the owning
/// peer's callbacks; the reach/copy tallies are commutative atomics. Wire
/// messages carry (remaining ttl, payload) and are typed — a payload type
/// error fails at compile time. Legacy object-payload path; prefer
/// FlatFloodPhase on hot paths.
template <typename T>
class FloodPhase final  // nf-lint: nf-flat-payload-ok
    : public TypedPhase<std::pair<std::uint32_t, T>> {
 public:
  using ReceiveFn = std::function<void(PhaseContext&, const T&)>;

  /// `ttl` bounds propagation depth (hops from the originator); use a value
  /// at least the overlay diameter for full coverage.
  FloodPhase(PeerId originator, T payload, std::uint64_t wire_bytes,
             TrafficCategory category, std::uint32_t ttl,
             ReceiveFn on_receive)
      : originator_(originator),
        payload_(std::move(payload)),
        wire_bytes_(wire_bytes),
        category_(category),
        ttl_(ttl),
        on_receive_(std::move(on_receive)) {
    require(ttl >= 1, "flood needs ttl >= 1");
  }

  void on_run_start(const Overlay& overlay) override {
    if (seen_.empty()) seen_.assign(overlay.num_peers(), false);
  }

  void on_start(PhaseContext& ctx) override {
    const PeerId self = ctx.self();
    if (self != originator_ || seen_[self.value()]) return;
    seen_[self.value()] = true;
    num_reached_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(ctx, payload_);
    forward(ctx, ttl_, self);
  }

  [[nodiscard]] bool done() const override {
    // Flood has no natural completion signal a peer could observe; once the
    // originator has fired, the engine drains in-flight copies and stops.
    return num_reached() > 0;
  }

  /// Peers that have processed the payload.
  [[nodiscard]] std::uint32_t num_reached() const {
    return num_reached_.load(std::memory_order_relaxed);
  }

  /// Total copies received, including suppressed duplicates.
  [[nodiscard]] std::uint64_t num_copies() const {
    return num_copies_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool reached(PeerId p) const {
    return p.value() < seen_.size() && seen_[p.value()];
  }

 protected:
  void on_payload(PhaseContext& ctx, std::pair<std::uint32_t, T>&& msg,
                  PeerId from) override {
    const PeerId self = ctx.self();
    num_copies_.fetch_add(1, std::memory_order_relaxed);
    if (seen_[self.value()]) return;  // duplicate
    seen_[self.value()] = true;
    num_reached_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(ctx, msg.second);
    if (msg.first > 0) forward(ctx, msg.first, from);
  }

 private:
  void forward(PhaseContext& ctx, std::uint32_t ttl, PeerId except) {
    // Every forwarded copy descends from the copy that reached this peer;
    // at the originator the cause is empty (round-originated flood).
    const obs::LineageId parent = ctx.cause();
    for (PeerId q : ctx.neighbors()) {
      if (q == except) continue;
      this->send(ctx, q, category_, wire_bytes_,
                 std::pair<std::uint32_t, T>(ttl - 1, payload_),
                 std::span<const obs::LineageId>(&parent, 1));
    }
  }

  PeerId originator_;
  T payload_;
  std::uint64_t wire_bytes_;
  TrafficCategory category_;
  std::uint32_t ttl_;
  ReceiveFn on_receive_;
  PeerArena<bool> seen_;
  std::atomic<std::uint32_t> num_reached_{0};
  std::atomic<std::uint64_t> num_copies_{0};
};

/// Standalone run-to-completion flood with the classic callback shape.
template <typename T>
class Flood final : public Protocol {
 public:
  using ReceiveFn = std::function<void(PeerId, const T&)>;

  Flood(PeerId originator, T payload, std::uint64_t wire_bytes,
        TrafficCategory category, std::uint32_t ttl, ReceiveFn on_receive)
      : phase_(originator, std::move(payload), wire_bytes, category, ttl,
               [fn = std::move(on_receive)](PhaseContext& ctx,
                                            const T& value) {
                 fn(ctx.self(), value);
               }) {
    const SessionId sid = mux_.add_session();
    PhaseOptions opts;
    opts.start = PhaseStart::kAllPeers;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(Context& ctx) override { mux_.on_round(ctx); }
  void on_message(Context& ctx, Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] std::uint32_t num_reached() const {
    return phase_.num_reached();
  }
  [[nodiscard]] std::uint64_t num_copies() const {
    return phase_.num_copies();
  }
  [[nodiscard]] bool reached(PeerId p) const { return phase_.reached(p); }

 private:
  FloodPhase<T> phase_;
  SessionMux mux_;
};

/// Flat slab-backed flood: the wire format is varint(remaining ttl)
/// followed by the opaque payload bytes. The originator installs the
/// encoded payload once; every forward is a varint prepend plus a span copy
/// into the shard slab — no payload object is ever reconstructed in flight.
class FlatFloodPhase final : public FlatPhase {
 public:
  /// Receives the payload body (ttl stripped); valid for the callback only.
  using ReceiveFn =
      std::function<void(PhaseContext&, std::span<const std::uint8_t>)>;

  FlatFloodPhase(PeerId originator, Bytes payload, std::uint64_t wire_bytes,
                 TrafficCategory category, std::uint32_t ttl,
                 ReceiveFn on_receive)
      : originator_(originator),
        payload_(std::move(payload)),
        wire_bytes_(wire_bytes),
        category_(category),
        ttl_(ttl),
        on_receive_(std::move(on_receive)) {
    require(ttl >= 1, "flood needs ttl >= 1");
  }

  void on_run_start(const Overlay& overlay) override {
    seen_.assign(overlay.num_peers(), false);
    num_reached_.store(0, std::memory_order_relaxed);
    num_copies_.store(0, std::memory_order_relaxed);
  }

  void on_start(PhaseContext& ctx) override {
    const PeerId self = ctx.self();
    if (self != originator_ || seen_[self.value()] != 0) return;
    seen_[self.value()] = true;
    num_reached_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(ctx, payload_);
    forward(ctx, ttl_, payload_, self);
  }

  [[nodiscard]] bool done() const override {
    // Flood has no natural completion signal a peer could observe; once the
    // originator has fired, the engine drains in-flight copies and stops.
    return num_reached() > 0;
  }

  [[nodiscard]] std::uint32_t num_reached() const {
    return num_reached_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t num_copies() const {
    return num_copies_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool reached(PeerId p) const {
    return p.value() < seen_.size() && seen_[p.value()] != 0;
  }

 protected:
  NF_SHARD_CONTEXT NF_STEADY_NOALLOC void on_flat(
      PhaseContext& ctx, std::span<const std::uint8_t> bytes,
      PeerId from) override {
    const PeerId self = ctx.self();
    num_copies_.fetch_add(1, std::memory_order_relaxed);
    if (seen_[self.value()] != 0) return;  // duplicate
    seen_[self.value()] = true;
    num_reached_.fetch_add(1, std::memory_order_relaxed);
    std::size_t offset = 0;
    const std::uint64_t ttl = get_varint(bytes, offset);
    const std::span<const std::uint8_t> body = bytes.subspan(offset);
    on_receive_(ctx, body);
    if (ttl > 0) forward(ctx, static_cast<std::uint32_t>(ttl), body, from);
  }

 private:
  void forward(PhaseContext& ctx, std::uint32_t ttl,
               std::span<const std::uint8_t> body, PeerId except) {
    // One slab write serves every neighbor: the engine re-copies the span
    // per destination slot at the barrier.
    PayloadWriter w = ctx.flat_payload();
    w.put_varint(ttl - 1);
    w.put_bytes(body);
    const PayloadRef ref = w.finish();
    const obs::LineageId parent = ctx.cause();
    for (PeerId q : ctx.neighbors()) {
      if (q == except) continue;
      ctx.send_flat(q, category_, wire_bytes_, ref,
                    std::span<const obs::LineageId>(&parent, 1));
    }
  }

  PeerId originator_;
  Bytes payload_;
  std::uint64_t wire_bytes_;
  TrafficCategory category_;
  std::uint32_t ttl_;
  ReceiveFn on_receive_;
  PeerArena<bool> seen_;
  std::atomic<std::uint32_t> num_reached_{0};
  std::atomic<std::uint64_t> num_copies_{0};
};

/// Standalone run-to-completion flat flood.
class FlatFlood final : public Protocol {
 public:
  using ReceiveFn =
      std::function<void(PeerId, std::span<const std::uint8_t>)>;

  FlatFlood(PeerId originator, Bytes payload, std::uint64_t wire_bytes,
            TrafficCategory category, std::uint32_t ttl, ReceiveFn on_receive)
      : phase_(originator, std::move(payload), wire_bytes, category, ttl,
               [fn = std::move(on_receive)](
                   PhaseContext& ctx, std::span<const std::uint8_t> body) {
                 fn(ctx.self(), body);
               }) {
    const SessionId sid = mux_.add_session();
    PhaseOptions opts;
    opts.start = PhaseStart::kAllPeers;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(Context& ctx) override { mux_.on_round(ctx); }
  void on_message(Context& ctx, Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] std::uint32_t num_reached() const {
    return phase_.num_reached();
  }
  [[nodiscard]] std::uint64_t num_copies() const {
    return phase_.num_copies();
  }
  [[nodiscard]] bool reached(PeerId p) const { return phase_.reached(p); }

 private:
  FlatFloodPhase phase_;
  SessionMux mux_;
};

}  // namespace nf::net
