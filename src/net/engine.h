// Round-based message-passing engine with a sharded, parallel-ready core.
//
// The simulator advances in synchronous rounds, the standard model for
// evaluating P2P aggregation protocols: a message sent in round r is
// delivered at the start of round r+1 (or later under the latency model) if
// its destination is then alive. Protocols are state machines over peers:
// the engine calls `on_round(ctx)` once per alive peer per round and
// `on_message(ctx, env)` for each delivered envelope. Several protocols can
// run concurrently (e.g. heartbeats alongside an aggregation); envelopes
// are routed back to the protocol that sent them.
//
// Execution model (serial and sharded runs share one code path):
//   1. churn + round bookkeeping              (engine thread)
//   2. predispatch: drops, loss, ACK/dup
//      bookkeeping; route deliveries to the
//      destination peer's shard               (engine thread)
//   3. deliver + tick each shard's peers      (worker pool, K shards)
//   4. barrier merge: order every send by its
//      canonical key, then charge the meter
//      and admit it to the network            (engine thread)
//
// Determinism contract: a K-shard run is bit-identical to the serial run —
// same envelope stream, same meter totals, same protocol results. The
// engine guarantees its half by (a) sharding peers into contiguous id
// ranges, (b) tagging every send with a canonical (major, minor) key —
// delivery index or tick slot, plus per-callback sequence — and merging
// shard outboxes in key order at the barrier, (c) keeping all shared
// bookkeeping (meter, reliability, latency, msg ids) on the engine thread,
// and (d) drawing loss decisions from a stateless counter-keyed hash
// stream instead of a sequential RNG. Protocols supply the other half; see
// DESIGN.md "Execution model" for the rules (per-peer state in arenas,
// commutative shared counters, per-peer RNG streams).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/capability.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/churn.h"
#include "net/envelope.h"
#include "net/link_model.h"
#include "net/metrics.h"
#include "net/overlay.h"
#include "net/shard.h"
#include "obs/context.h"

namespace nf::net {

/// Opt-in unreliable-link model with an automatic reliability layer.
///
/// With `loss_probability > 0` every transmission (data and ACK alike) is
/// dropped independently with that probability. The engine then behaves
/// like a reliable transport: each delivered message is acknowledged
/// (`ack_bytes` charged to the receiver, category kControl), unacked
/// messages are retransmitted after `retransmit_after` rounds (re-charging
/// the sender), and receiver-side duplicate suppression keeps protocols
/// exactly-once — so every protocol in the library runs unmodified over
/// lossy links, paying for the losses in bytes and rounds instead of
/// correctness. `bench/ablation_loss` measures that price.
///
/// Loss draws come from a per-transmission hash stream keyed by (seed,
/// transmission counter), so they are independent of delivery order and
/// identical across serial and sharded runs.
struct LinkFaultModel {
  double loss_probability = 0.0;
  std::uint32_t ack_bytes = 4;
  std::uint32_t retransmit_after = 2;  ///< rounds without ACK before resend
  std::uint32_t max_retries = 50;      ///< then give up (dest likely dead)
  std::uint64_t seed = 0xACC1DE57ull;
};

/// Heterogeneous link latencies: each (unordered) overlay link gets a
/// fixed delay drawn uniformly from [min_delay, max_delay] rounds,
/// deterministic in (seed, endpoints). The default (1, 1) reproduces the
/// synchronous model. Protocols need no changes — convergecast and friends
/// are event-driven — but completion times stretch to the slowest path.
///
/// Subsumed by `LinkModel` (net/link_model.h): set_latency_model(m) is
/// exactly set_link_model with m's delays and infinite capacity — same
/// seeded per-link draw, bit-for-bit. Kept as the convenient spelling for
/// delay-only experiments.
struct LatencyModel {
  std::uint32_t min_delay = 1;
  std::uint32_t max_delay = 1;
  std::uint64_t seed = 0x1A7E9C1ull;

  [[nodiscard]] std::uint32_t delay(PeerId a, PeerId b) const;
};

class Engine;

/// Per-peer view handed to protocol callbacks. Sends are buffered in the
/// executing shard's outbox, then metered and admitted to the network in
/// canonical order at the round barrier.
class Context {
 public:
  NF_REENTRANT [[nodiscard]] PeerId self() const { return self_; }
  NF_REENTRANT [[nodiscard]] std::uint64_t round() const;
  NF_REENTRANT [[nodiscard]] const Overlay& overlay() const;
  NF_REENTRANT [[nodiscard]] const std::vector<PeerId>& neighbors() const;
  NF_REENTRANT [[nodiscard]] bool is_alive(PeerId p) const;

  /// Lineage id of the delivered message this callback is handling, or
  /// kNoLineage for round ticks (and runs without an obs context). Sends
  /// made from this context inherit it as their causal parent.
  NF_REENTRANT [[nodiscard]] obs::LineageId cause() const { return cause_; }

  /// A writer into the executing shard's outbox slab. Encode the payload,
  /// finish() for the PayloadRef, and pass it to send_flat(). Refs are only
  /// valid to send from this same callback (the slab resets next round).
  NF_REENTRANT [[nodiscard]] PayloadWriter flat_payload();

  /// Resolves a delivered envelope's flat payload to bytes. Empty span when
  /// the envelope carries none.
  NF_REENTRANT [[nodiscard]] std::span<const std::uint8_t> payload_bytes(
      const Envelope& env) const;

  /// Queues a message whose payload is a flat slab ref (net/payload.h). The
  /// engine copies the referenced span into the destination transit-ring
  /// slot at the barrier — no owning object is ever constructed.
  NF_REENTRANT void send_flat(PeerId to, TrafficCategory category,
                              std::uint64_t bytes, PayloadRef flat);
  NF_REENTRANT void send_flat(PeerId to, TrafficCategory category,
                              std::uint64_t bytes, PayloadRef flat,
                              std::span<const obs::LineageId> parents);

  /// Flat send tagged with a (session, phase) pair (see send_tagged()).
  NF_REENTRANT void send_flat_tagged(PeerId to, TrafficCategory category,
                                     std::uint64_t bytes, PayloadRef flat,
                                     SessionId session, PhaseId phase,
                                     std::span<const obs::LineageId> parents);

  /// Queues a message for delivery at the next round (later under the
  /// latency model); its bytes are metered at the round barrier.
  NF_REENTRANT void send(PeerId to, TrafficCategory category,
                         std::uint64_t bytes, std::any payload = {});

  /// As send(), with an explicit causal parent set replacing the implicit
  /// cause() — for components whose sends merge several arrivals (e.g. a
  /// convergecast forward, a gossip share). parents[0] becomes the primary
  /// parent; the rest are recorded as sampled extra edges. Zero ids are
  /// ignored, so callers push causes unconditionally.
  NF_REENTRANT void send(PeerId to, TrafficCategory category,
                         std::uint64_t bytes, std::any payload,
                         std::span<const obs::LineageId> parents);

  /// As send(), tagging the envelope with a (session, phase) pair so a
  /// SessionMux (net/session.h) can route it to the right Phase component.
  NF_REENTRANT void send_tagged(PeerId to, TrafficCategory category,
                                std::uint64_t bytes, std::any payload,
                                SessionId session, PhaseId phase);

  /// Tagged send with an explicit causal parent set (see the untagged
  /// overload). The session runtime uses this to thread the replayed
  /// envelope's own lineage through buffered-phase replays.
  NF_REENTRANT void send_tagged(PeerId to, TrafficCategory category,
                                std::uint64_t bytes, std::any payload,
                                SessionId session, PhaseId phase,
                                std::span<const obs::LineageId> parents);

 private:
  friend class Engine;

  /// A buffered send tagged with its canonical merge key. `major` is the
  /// slot of the callback that produced it (delivery index or tick slot),
  /// `minor` the send's sequence within that callback — together a total
  /// order identical to the serial engine's send order.
  struct KeyedSend {
    std::uint64_t major;
    std::uint32_t minor;
    std::uint32_t is_ack;      // engine-generated ACK (predispatch only)
    std::size_t protocol_index;
    std::uint64_t ack_msg_id;  // msg id being acknowledged (ACKs only)
    Envelope envelope;
    /// Primary causal parent; the envelope's own lineage id is assigned at
    /// the merge barrier, in canonical order.
    obs::LineageId parent = obs::kNoLineage;
    /// Parents beyond the first (multi-parent merges); usually empty.
    std::vector<obs::LineageId> extra_parents;
  };

  Context(Engine& engine, PeerId self, std::size_t protocol_index,
          std::vector<KeyedSend>* outbox, SlabArena* slab,
          std::uint32_t slab_id, std::uint64_t major, std::uint32_t first_minor,
          obs::LineageId cause)
      : engine_(engine),
        self_(self),
        protocol_index_(protocol_index),
        outbox_(outbox),
        slab_(slab),
        slab_id_(slab_id),
        major_(major),
        next_minor_(first_minor),
        cause_(cause) {}

  NF_REENTRANT void push_send(PeerId to, TrafficCategory category,
                              std::uint64_t bytes, std::any payload,
                              PayloadRef flat, SessionId session,
                              PhaseId phase,
                              std::span<const obs::LineageId> parents);

  Engine& engine_;
  PeerId self_;
  std::size_t protocol_index_;
  std::vector<KeyedSend>* outbox_;
  SlabArena* slab_;
  std::uint32_t slab_id_;
  std::uint64_t major_;
  std::uint32_t next_minor_;
  obs::LineageId cause_ = obs::kNoLineage;
};

/// A distributed protocol: one instance drives all peers (per-peer state
/// lives inside the protocol, indexed by the dense peer id).
///
/// Sharded execution: on_round/on_message for peers of different shards run
/// concurrently. A protocol is shard-safe iff callbacks for peer p touch
/// only p's slots in dense per-peer arenas (common/arena.h) plus, at most,
/// commutative atomic accumulators. Every protocol in this library is
/// shard-safe; the full authoring contract is in DESIGN.md.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once per run() on the engine thread before the first round;
  /// size per-peer arenas here.
  NF_ENGINE_THREAD virtual void on_run_start(const Overlay& /*overlay*/) {}

  /// Called once per round on the engine thread, after churn and before
  /// any delivery or tick — the place for whole-round bookkeeping that
  /// must not live in per-peer callbacks (e.g. a gossip round counter).
  NF_ENGINE_THREAD virtual void on_round_begin(std::uint64_t /*round*/) {}

  /// Called once per alive peer per round, after message delivery.
  NF_SHARD_CONTEXT virtual void on_round(Context& /*ctx*/) {}

  /// Called for each envelope delivered to an alive peer.
  NF_SHARD_CONTEXT virtual void on_message(Context& /*ctx*/,
                                           Envelope&& /*env*/) {}

  /// Called once per run() on the engine thread after the final round —
  /// quiescence or max_rounds. Close out bookkeeping that would otherwise
  /// need one more round boundary (e.g. trace spans for work that finished
  /// in the very last round).
  NF_ENGINE_THREAD virtual void on_run_end() {}

  /// Engine stops when no messages are in flight and no protocol is active.
  /// Polled on the engine thread, but implementations must be pure reads.
  NF_REENTRANT [[nodiscard]] virtual bool active() const { return false; }
};

class Engine {
 public:
  Engine(Overlay& overlay, TrafficMeter& meter);

  /// Runs `protocols` until quiescence (no messages in flight, no protocol
  /// active) or `max_rounds`, whichever first. Returns rounds executed.
  /// Churn events in `schedule` whose round falls inside the run are applied
  /// at the start of the matching round.
  NF_ENGINE_THREAD std::uint64_t run(std::span<Protocol* const> protocols,
                                     std::uint64_t max_rounds,
                                     const ChurnSchedule* schedule = nullptr);

  /// Convenience overload for a single protocol.
  NF_ENGINE_THREAD std::uint64_t run(Protocol& protocol,
                                     std::uint64_t max_rounds,
                                     const ChurnSchedule* schedule = nullptr);

  /// Stable during the parallel phase; safe to read from shard callbacks.
  NF_REENTRANT [[nodiscard]] std::uint64_t round() const { return round_; }
  NF_REENTRANT [[nodiscard]] Overlay& overlay() { return overlay_; }
  NF_REENTRANT [[nodiscard]] const Overlay& overlay() const {
    return overlay_;
  }
  [[nodiscard]] TrafficMeter& meter() { return meter_; }

  /// Messages dropped because the destination was dead on delivery.
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }

  /// Runs protocol callbacks on `threads` shards (1 = serial, the default).
  /// Any K produces bit-identical results; K > 1 spawns K-1 pool workers
  /// (the engine thread drives the remaining shard). Must be called before
  /// run().
  NF_ENGINE_THREAD void set_threads(std::uint32_t threads);
  [[nodiscard]] std::uint32_t threads() const { return threads_; }

  /// Enables the lossy-link model. Must be called before run().
  NF_ENGINE_THREAD void set_fault_model(const LinkFaultModel& model);

  /// Sets heterogeneous link latencies (the infinite-capacity special case
  /// of set_link_model — bit-identical delays). Must be called before
  /// run().
  NF_ENGINE_THREAD void set_latency_model(const LatencyModel& model);

  /// Sets the full link model: per-link propagation delay plus per-link
  /// capacity (bytes/round) with a bounded backlog. Under a capacity-
  /// limited model every admission runs through the link scheduler: a
  /// message of s bytes on a link with capacity c and backlog q delivers
  /// after delay + ceil((q+s)/c) - 1 extra rounds, in canonical admission
  /// order, and each link drains c bytes at every round barrier — all on
  /// the engine thread, so congested runs stay bit-identical for any
  /// thread count. The default model reproduces the historical synchronous
  /// engine exactly. Must be called before run().
  NF_ENGINE_THREAD void set_link_model(const LinkModel& model);
  [[nodiscard]] const LinkModel& link_model() const { return link_; }

  /// Diagnostics for the link scheduler (0 under infinite capacity).
  /// queue_delay_rounds(): total extra rounds messages spent queued behind
  /// link backlogs; clamped_backlog_bytes(): backlog bytes beyond the
  /// max_backlog_rounds horizon (forgiven, not dropped — a measure of how
  /// far past the model's bound the offered load pushed).
  [[nodiscard]] std::uint64_t queued_messages() const { return queued_msgs_; }
  [[nodiscard]] std::uint64_t queue_delay_rounds() const {
    return queue_delay_rounds_;
  }
  [[nodiscard]] std::uint64_t clamped_backlog_bytes() const {
    return clamped_bytes_;
  }
  /// Current total backlog across all links (end of last round).
  [[nodiscard]] std::uint64_t backlog_bytes() const { return backlog_bytes_; }

  /// Attaches an observability context (nullptr detaches). The engine then
  /// counts sends/deliveries/rounds/bytes, histograms message sizes, stamps
  /// the tracer's logical clock at every round boundary, and drives the
  /// context's TimeSeries once per round (per-round deliveries, sends,
  /// bytes, in-flight messages, and per-shard busy wall time — stamped with
  /// the tracer clock so series from successive engines sharing one context
  /// stay strictly ordered). Per-shard busy/idle wall time accumulates into
  /// `engine/shard<k>/busy_us` / `idle_us` gauges so `--threads=K`
  /// imbalance is visible in reports. Metric handles are cached here so the
  /// per-message cost is an increment, not a map lookup.
  NF_ENGINE_THREAD void set_obs(obs::Context* obs);

  /// Observes every transmission the engine admits to the network (data,
  /// ACKs and retransmissions alike), in canonical order — the hook the
  /// golden determinism tests record envelope streams through. Pass an
  /// empty function to detach.
  NF_ENGINE_THREAD void set_send_probe(
      std::function<void(const Envelope&)> probe);

  /// Resolves a flat payload ref against the engine's slab table. Valid for
  /// shard-slab refs during the round that produced them and for ring-slab
  /// refs until their delivery round completes. Empty span for kNoSlab.
  NF_REENTRANT [[nodiscard]] std::span<const std::uint8_t> resolve(
      const PayloadRef& ref) const;

  /// Marks warm-up as finished: from the next round on, heap allocations
  /// made inside the round loop (observed via common/alloc_hook.h when the
  /// nf_alloc_hook override is linked) accumulate into steady_allocs() and
  /// the `engine/steady_allocs` obs counter. A loss-free flat-payload run
  /// on a warmed engine performs none — tests/steady_alloc_test.cpp is the
  /// gate. Also equalizes transit-ring capacities: a run's heaviest round
  /// warms only the ring slot its parity happens to land on, and the next
  /// run may land it on another.
  NF_ENGINE_THREAD void begin_steady_state();
  [[nodiscard]] std::uint64_t steady_allocs() const { return steady_allocs_; }

  /// Diagnostics for the reliability layer (0 when the model is off).
  [[nodiscard]] std::uint64_t lost_transmissions() const { return lost_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t given_up() const { return given_up_; }

 private:
  friend class Context;

  /// A transmission admitted to the network, waiting for its delivery
  /// round.
  struct Outgoing {
    std::size_t protocol_index;
    Envelope envelope;
    std::uint64_t msg_id = 0;  // reliability id; 0 = unreliable or unset
    bool is_ack = false;
    bool lost = false;  // loss drawn at admission, applied at delivery
  };

  /// An unacknowledged reliable message, kept per sender for retransmit.
  struct Pending {
    Outgoing message;  // pristine copy (lost flag clear)
    std::uint64_t next_retry;
    std::uint32_t attempts;
    /// Owning copy of the flat payload span (slab refs don't outlive their
    /// round); retransmissions copy it into a fresh ring-slot ref.
    std::vector<std::uint8_t> flat_bytes;
  };

  /// A delivery routed to a shard: `index` is the message's position in
  /// this round's inbox — the major key for sends its handler makes.
  struct Delivery {
    std::uint64_t index;
    Outgoing out;
  };

  struct ShardScratch {
    std::vector<Delivery> inq;
    std::vector<Context::KeyedSend> outbox;
  };

  NF_ENGINE_THREAD void predispatch(std::span<Protocol* const> protocols,
                                    std::vector<Outgoing>& inbox,
                                    const ShardPlan& plan);
  NF_SHARD_CONTEXT void run_shard(std::span<Protocol* const> protocols,
                                  std::uint32_t shard, const ShardPlan& plan,
                                  std::uint64_t tick_base);
  NF_ENGINE_THREAD NF_STEADY_NOALLOC void merge_and_finalize();
  /// `flat_bytes` is the payload span to copy into the destination ring
  /// slot (empty unless out.envelope.flat is valid).
  NF_ENGINE_THREAD NF_STEADY_NOALLOC void admit(
      Outgoing&& out, std::span<const std::uint8_t> flat_bytes);
  NF_ENGINE_THREAD void scan_retransmissions();
  NF_ENGINE_THREAD void drain_link_queues();
  NF_ENGINE_THREAD void ack_received(PeerId original_sender,
                                     std::uint64_t msg_id);
  NF_ENGINE_THREAD [[nodiscard]] bool draw_loss();
  NF_ENGINE_THREAD [[nodiscard]] std::vector<Outgoing>& bucket_at(
      std::uint64_t round);
  NF_ENGINE_THREAD [[nodiscard]] SlabArena& ring_slab_at(
      std::uint64_t round);

  Overlay& overlay_;
  TrafficMeter& meter_;
  obs::Context* obs_ = nullptr;
  obs::Counter* obs_sent_ = nullptr;
  obs::Counter* obs_delivered_ = nullptr;
  obs::Counter* obs_rounds_ = nullptr;
  obs::Counter* obs_sent_bytes_ = nullptr;
  obs::Histogram* obs_msg_bytes_ = nullptr;
  obs::Gauge* obs_in_flight_ = nullptr;
  /// Lineage hooks (nullptr when obs is detached). All recorder writes
  /// happen on the engine thread: id assignment at the merge barrier,
  /// delivery marks in predispatch.
  obs::LineageRecorder* lineage_ = nullptr;
  std::uint64_t lineage_clock_ = 0;  // tracer clock, cached once per round
  /// Topology telemetry (nullptr when obs is detached): the per-level
  /// matrix and heavy-hitter link summary are charged on the engine thread
  /// in canonical merge order only — merge_and_finalize() and
  /// scan_retransmissions(); nf-lint flags charges anywhere else.
  obs::LinkStats* link_stats_ = nullptr;
  /// Obs self-overhead meter: wall time spent inside the engine's obs-only
  /// blocks (round stamping, shard-gauge fold, link charging, series
  /// sampling), accumulated in nanoseconds and reported as whole
  /// microseconds into `obs/overhead_us`; `engine/round_us` carries the
  /// whole-round wall time as the denominator for the CI overhead budget.
  obs::Counter* obs_overhead_us_ = nullptr;
  obs::Counter* obs_round_us_ = nullptr;
  std::uint64_t round_obs_ns_ = 0;  // this round's obs-block nanoseconds
  std::uint64_t overhead_ns_total_ = 0;
  std::uint64_t overhead_us_reported_ = 0;
  std::uint64_t round_ns_total_ = 0;
  std::uint64_t round_us_reported_ = 0;
  // Per-shard wall-time accounting (obs-only). Each worker writes its own
  // shard's slot during the parallel phase; the engine thread folds the
  // slots into the cumulative busy/idle gauges at the barrier.
  std::vector<obs::Gauge*> obs_shard_busy_;
  std::vector<obs::Gauge*> obs_shard_idle_;
  std::vector<std::uint64_t> shard_busy_us_;
  std::function<void(const Envelope&)> send_probe_;

  // Sharded execution.
  std::uint32_t threads_ = 1;
  std::unique_ptr<ShardPool> pool_;
  std::vector<ShardScratch> shards_;
  std::vector<Context::KeyedSend> engine_sends_;  // ACKs, this round
  std::vector<Context::KeyedSend> merge_scratch_;
  std::uint64_t tick_base_ = 0;  // this round's inbox size, for tick majors

  // Flat-payload slabs (net/payload.h), all high-water-mark reset so the
  // steady state never reallocates. Shard slabs hold payloads written
  // during the parallel phase (id = shard index, reset each predispatch);
  // ring-slot slabs hold in-transit payload spans copied at the merge
  // barrier in canonical order — so slab offsets, like everything else, are
  // bit-identical for any shard count (id = kRingSlabBase + slot, reset
  // when the slot's delivery round completes).
  std::vector<SlabArena> shard_slabs_;
  std::vector<SlabArena> ring_slabs_;

  // Transmissions in transit, bucketed by delivery round modulo the ring
  // size (a dense replacement for a round-keyed hash map; the ring spans
  // the maximum link delay).
  std::vector<std::vector<Outgoing>> transit_ring_;
  std::vector<Outgoing> inbox_scratch_;  // swapped with the drained bucket
  std::uint64_t in_transit_ = 0;

  // Steady-state allocation accounting (begin_steady_state()).
  bool steady_ = false;
  std::uint64_t steady_allocs_ = 0;
  obs::Counter* obs_steady_allocs_ = nullptr;

  // Link model (delay + capacity). link_delay_on_ short-circuits the
  // per-send delay draw when every link is delay 1; link_capacity_on_
  // gates the whole scheduler, so the infinite-capacity default costs
  // nothing and reproduces the historical engine bit-for-bit.
  LinkModel link_{};
  bool link_delay_on_ = false;
  bool link_capacity_on_ = false;
  // Per-link backlog ledger. Engine-thread-only, canonical admission order
  // (schedule in admit(), drain at the round barrier) — nf-lint's
  // nf-link-model check flags mutation outside net/engine.cpp.
  LinkQueueTable link_queues_;
  std::uint64_t queued_msgs_ = 0;
  std::uint64_t queue_delay_rounds_ = 0;
  std::uint64_t clamped_bytes_ = 0;
  std::uint64_t backlog_bytes_ = 0;
  std::vector<std::uint64_t> backlog_by_level_;  // drain scratch, obs only
  obs::Counter* obs_queued_msgs_ = nullptr;
  obs::Counter* obs_queue_delay_ = nullptr;
  obs::Counter* obs_clamped_bytes_ = nullptr;
  obs::Gauge* obs_backlog_bytes_ = nullptr;
  std::uint64_t round_{0};
  std::uint64_t dropped_{0};

  // Reliability layer (active iff fault_.loss_probability > 0). All state
  // is dense per-peer-index: unacked messages per sender, seen reliable
  // msg ids (sorted) per receiver.
  LinkFaultModel fault_{};
  bool lossy_ = false;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t next_transmission_ = 0;  // loss-stream counter
  std::vector<std::vector<Pending>> pending_by_sender_;
  std::uint64_t pending_count_ = 0;
  std::vector<std::vector<std::uint64_t>> seen_by_receiver_;
  std::uint64_t lost_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t given_up_ = 0;
};

}  // namespace nf::net
