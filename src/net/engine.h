// Round-based message-passing engine.
//
// The simulator advances in synchronous rounds, the standard model for
// evaluating P2P aggregation protocols: a message sent in round r is
// delivered at the start of round r+1 if its destination is then alive.
// Protocols are state machines over peers: the engine calls
// `on_round(ctx)` once per alive peer per round and `on_message(ctx, env)`
// for each delivered envelope. Several protocols can run concurrently (e.g.
// heartbeats alongside an aggregation); envelopes are routed back to the
// protocol that sent them.
//
// Determinism: peers are visited in id order, inboxes are delivered in send
// order, and churn events fire at fixed rounds, so a run is a pure function
// of (topology, workload, schedule, seeds).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/churn.h"
#include "net/envelope.h"
#include "net/metrics.h"
#include "net/overlay.h"
#include "obs/context.h"

namespace nf::net {

/// Opt-in unreliable-link model with an automatic reliability layer.
///
/// With `loss_probability > 0` every transmission (data and ACK alike) is
/// dropped independently with that probability. The engine then behaves
/// like a reliable transport: each delivered message is acknowledged
/// (`ack_bytes` charged to the receiver, category kControl), unacked
/// messages are retransmitted after `retransmit_after` rounds (re-charging
/// the sender), and receiver-side duplicate suppression keeps protocols
/// exactly-once — so every protocol in the library runs unmodified over
/// lossy links, paying for the losses in bytes and rounds instead of
/// correctness. `bench/ablation_loss` measures that price.
struct LinkFaultModel {
  double loss_probability = 0.0;
  std::uint32_t ack_bytes = 4;
  std::uint32_t retransmit_after = 2;  ///< rounds without ACK before resend
  std::uint32_t max_retries = 50;      ///< then give up (dest likely dead)
  std::uint64_t seed = 0xACC1DE57ull;
};

/// Heterogeneous link latencies: each (unordered) overlay link gets a
/// fixed delay drawn uniformly from [min_delay, max_delay] rounds,
/// deterministic in (seed, endpoints). The default (1, 1) reproduces the
/// synchronous model. Protocols need no changes — convergecast and friends
/// are event-driven — but completion times stretch to the slowest path.
struct LatencyModel {
  std::uint32_t min_delay = 1;
  std::uint32_t max_delay = 1;
  std::uint64_t seed = 0x1A7E9C1ull;

  [[nodiscard]] std::uint32_t delay(PeerId a, PeerId b) const {
    if (min_delay == max_delay) return min_delay;
    // Order-independent per-link hash.
    const std::uint64_t lo = std::min(a.value(), b.value());
    const std::uint64_t hi = std::max(a.value(), b.value());
    std::uint64_t h = seed ^ (lo * 0x9E3779B97F4A7C15ull) ^ (hi << 32);
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return min_delay +
           static_cast<std::uint32_t>(h % (max_delay - min_delay + 1));
  }
};

class Engine;

/// Per-peer view handed to protocol callbacks. Sends are charged to the
/// meter immediately and delivered next round.
class Context {
 public:
  [[nodiscard]] PeerId self() const { return self_; }
  [[nodiscard]] std::uint64_t round() const;
  [[nodiscard]] const Overlay& overlay() const;
  [[nodiscard]] const std::vector<PeerId>& neighbors() const;
  [[nodiscard]] bool is_alive(PeerId p) const;

  /// Queues a message for delivery at the next round and meters its bytes.
  void send(PeerId to, TrafficCategory category, std::uint64_t bytes,
            std::any payload = {});

 private:
  friend class Engine;
  Context(Engine& engine, PeerId self, std::size_t protocol_index)
      : engine_(engine), self_(self), protocol_index_(protocol_index) {}

  Engine& engine_;
  PeerId self_;
  std::size_t protocol_index_;
};

/// A distributed protocol: one instance drives all peers (per-peer state
/// lives inside the protocol, indexed by PeerId).
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once per alive peer per round, after message delivery.
  virtual void on_round(Context& /*ctx*/) {}

  /// Called for each envelope delivered to an alive peer.
  virtual void on_message(Context& /*ctx*/, Envelope&& /*env*/) {}

  /// Engine stops when no messages are in flight and no protocol is active.
  [[nodiscard]] virtual bool active() const { return false; }
};

class Engine {
 public:
  Engine(Overlay& overlay, TrafficMeter& meter);

  /// Runs `protocols` until quiescence (no messages in flight, no protocol
  /// active) or `max_rounds`, whichever first. Returns rounds executed.
  /// Churn events in `schedule` whose round falls inside the run are applied
  /// at the start of the matching round.
  std::uint64_t run(std::span<Protocol* const> protocols,
                    std::uint64_t max_rounds,
                    const ChurnSchedule* schedule = nullptr);

  /// Convenience overload for a single protocol.
  std::uint64_t run(Protocol& protocol, std::uint64_t max_rounds,
                    const ChurnSchedule* schedule = nullptr);

  [[nodiscard]] std::uint64_t round() const { return round_; }
  [[nodiscard]] Overlay& overlay() { return overlay_; }
  [[nodiscard]] const Overlay& overlay() const { return overlay_; }
  [[nodiscard]] TrafficMeter& meter() { return meter_; }

  /// Messages dropped because the destination was dead on delivery.
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }

  /// Enables the lossy-link model. Must be called before run().
  void set_fault_model(const LinkFaultModel& model);

  /// Sets heterogeneous link latencies. Must be called before run().
  void set_latency_model(const LatencyModel& model);

  /// Attaches an observability context (nullptr detaches). The engine then
  /// counts sends/deliveries/rounds, histograms message sizes and stamps
  /// the tracer's logical clock at every round boundary. Metric handles
  /// are cached here so the per-message cost is an increment, not a map
  /// lookup.
  void set_obs(obs::Context* obs);

  /// Diagnostics for the reliability layer (0 when the model is off).
  [[nodiscard]] std::uint64_t lost_transmissions() const { return lost_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t given_up() const { return given_up_; }

 private:
  friend class Context;
  struct Outgoing {
    std::size_t protocol_index;
    Envelope envelope;
    std::uint64_t msg_id = 0;   // 0 = unreliable (model off) or ACK
    bool is_ack = false;
    PeerId ack_to{0};           // for ACKs: the original sender
  };

  struct Pending {
    Outgoing message;           // full copy for retransmission
    std::uint64_t next_retry;
    std::uint32_t attempts;
  };

  void enqueue(std::size_t protocol_index, Envelope&& env);
  void deliver(std::span<Protocol* const> protocols, Outgoing&& out);
  void scan_retransmissions();

  Overlay& overlay_;
  TrafficMeter& meter_;
  obs::Context* obs_ = nullptr;
  obs::Counter* obs_sent_ = nullptr;
  obs::Counter* obs_delivered_ = nullptr;
  obs::Counter* obs_rounds_ = nullptr;
  obs::Histogram* obs_msg_bytes_ = nullptr;
  std::vector<Outgoing> in_flight_;
  std::vector<Outgoing> outbox_;
  // Messages scheduled for rounds beyond the next one (latency > 1),
  // keyed by absolute delivery round.
  std::unordered_map<std::uint64_t, std::vector<Outgoing>> delayed_;
  LatencyModel latency_{};
  bool latency_on_ = false;
  std::uint64_t round_{0};
  std::uint64_t dropped_{0};

  // Reliability layer (active iff fault_.loss_probability > 0).
  LinkFaultModel fault_{};
  bool lossy_ = false;
  Rng fault_rng_{0};
  std::uint64_t next_msg_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t lost_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t given_up_ = 0;
};

}  // namespace nf::net
