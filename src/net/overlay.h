// Overlay: a topology plus peer liveness.
//
// The topology is the static wiring; the overlay tracks which peers are
// currently alive (churn flips liveness) and answers the queries protocols
// need: "who are my *alive* neighbors right now?".
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "net/topology.h"

namespace nf::net {

class Overlay {
 public:
  explicit Overlay(Topology topology);

  [[nodiscard]] std::uint32_t num_peers() const {
    return topology_.num_peers();
  }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  [[nodiscard]] bool is_alive(PeerId p) const {
    return alive_[p.value()];
  }
  [[nodiscard]] std::uint32_t num_alive() const { return num_alive_; }

  /// All neighbors, dead or alive (the static wiring).
  [[nodiscard]] const std::vector<PeerId>& neighbors(PeerId p) const {
    return topology_.neighbors(p);
  }

  /// Alive neighbors only. Returns a fresh vector; churn-path only.
  [[nodiscard]] std::vector<PeerId> alive_neighbors(PeerId p) const;

  /// Marks a peer failed/left. Idempotent.
  void fail(PeerId p);

  /// Brings a failed peer back with its original links. Idempotent.
  void revive(PeerId p);

 private:
  Topology topology_;
  std::vector<bool> alive_;
  std::uint32_t num_alive_;
};

}  // namespace nf::net
