// Link capacity and contention model (ROADMAP item 4).
//
// The round engine historically charged bytes but delivered everything
// queued on a link in one round — infinite capacity. This header adds the
// bandwidth half of the network model:
//
//  * `LinkClassModel` assigns every peer a bytes-per-round uplink class
//    (modem / DSL / fiber presets, a uniform cap, or a deterministic
//    heterogeneous mix drawn from a seeded hash), with optional per-
//    hierarchy-level overrides. A directed link's capacity is the min of
//    its endpoint classes — the narrow end gates the flow.
//  * `LinkModel` generalizes the engine's `LatencyModel`: per-link
//    propagation delay (same seeded draw, bit-for-bit) plus per-link
//    capacity and a bounded backlog horizon. The default is the infinite-
//    capacity special case, which reproduces the historical engine
//    byte-for-byte.
//  * `LinkQueueTable` is the engine-internal per-link backlog ledger the
//    scheduler in `Engine::admit()` runs against. All mutation happens on
//    the engine thread in canonical admission order (nf-lint enforces
//    this), which is what keeps congested runs bit-identical for any
//    shard count.
//
// Scheduling model (fluid queue, one draw per admission): a message of s
// bytes admitted to a link with capacity c and backlog q is delivered
// after its propagation delay plus ceil((q+s)/c) transfer rounds; the
// backlog then grows by s and drains c bytes per round at the round
// barrier. The backlog is clamped to c * max_backlog_rounds so a
// persistently oversubscribed link delays messages by a bounded horizon
// instead of unboundedly (clamped bytes are surfaced as a diagnostic
// counter, never dropped — protocols stay exactly-once and live).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/capability.h"
#include "common/error.h"
#include "common/hashing.h"
#include "common/ids.h"

namespace nf::net {

/// Sentinel: a link with this capacity never queues.
inline constexpr std::uint64_t kInfiniteCapacity = ~0ull;

/// Peer uplink classes, coarse but recognizable. Capacities are bytes per
/// round under the convention of ~1 s rounds.
enum class LinkClass : std::uint8_t { kModem = 0, kDsl = 1, kFiber = 2 };
inline constexpr std::size_t kNumLinkClasses = 3;

/// Preset bytes/round per class: 56 kbit modem, 2 Mbit DSL, 100 Mbit fiber.
[[nodiscard]] constexpr std::uint64_t link_class_capacity(LinkClass c) {
  switch (c) {
    case LinkClass::kModem: return 7'000;
    case LinkClass::kDsl: return 256'000;
    case LinkClass::kFiber: return 12'500'000;
  }
  return kInfiniteCapacity;
}

[[nodiscard]] constexpr const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::kModem: return "modem";
    case LinkClass::kDsl: return "dsl";
    case LinkClass::kFiber: return "fiber";
  }
  return "?";
}

/// Per-peer capacity classes plus per-hierarchy-level overrides.
///
/// Copyable value type; two models built from the same inputs agree on
/// every capacity on every peer, with no shared tables — the same property
/// that makes `GroupHash` broadcastable. The default-constructed model is
/// the infinite-capacity network.
class LinkClassModel {
 public:
  LinkClassModel() = default;

  /// Every link capped at `bytes_per_round` (kInfiniteCapacity = off).
  [[nodiscard]] static LinkClassModel uniform(std::uint64_t bytes_per_round);

  /// Every peer in one preset class.
  [[nodiscard]] static LinkClassModel uniform_class(LinkClass c);

  /// Deterministic heterogeneous mix: peer p's class is drawn from
  /// hash_uniform(p, seed) against the cumulative (modem, dsl, rest=fiber)
  /// fractions — stateless, so every participant derives the same
  /// assignment from three numbers.
  [[nodiscard]] static LinkClassModel mixed(double modem_fraction,
                                            double dsl_fraction,
                                            std::uint64_t seed);

  /// Overrides the capacity of every link at hierarchy level `level`
  /// (a link's level is its deeper endpoint's depth, matching the
  /// obs::LinkStats convention). The model carries its own copy of the
  /// depth vector: link capacities are protocol behaviour and must never
  /// depend on whether an observability context is attached.
  void set_level_override(std::span<const std::uint32_t> depths,
                          std::uint32_t level, std::uint64_t bytes_per_round);

  /// The peer's uplink class (meaningful for mixed models; uniform models
  /// report fiber-or-better as kFiber).
  [[nodiscard]] LinkClass peer_class(PeerId p) const {
    if (mode_ != Mode::kMixed) return LinkClass::kFiber;
    const double u = hash_uniform(p.value(), seed_);
    if (u < modem_fraction_) return LinkClass::kModem;
    if (u < modem_fraction_ + dsl_fraction_) return LinkClass::kDsl;
    return LinkClass::kFiber;
  }

  [[nodiscard]] std::uint64_t peer_capacity(PeerId p) const {
    switch (mode_) {
      case Mode::kInfinite: return kInfiniteCapacity;
      case Mode::kUniform: return uniform_bytes_;
      case Mode::kMixed: return link_class_capacity(peer_class(p));
    }
    return kInfiniteCapacity;
  }

  /// Directed link capacity: min of the endpoint classes, then any level
  /// override replaces it. Symmetric in (a, b).
  [[nodiscard]] std::uint64_t link_capacity(PeerId a, PeerId b) const {
    if (!depths_.empty()) {
      const std::uint32_t level = level_of(a, b);
      if (level < level_caps_.size() && level_caps_[level] != 0) {
        return level_caps_[level];
      }
    }
    const std::uint64_t ca = peer_capacity(a);
    const std::uint64_t cb = peer_capacity(b);
    return ca < cb ? ca : cb;
  }

  /// True when any link can actually queue (the engine skips the whole
  /// scheduler otherwise).
  [[nodiscard]] bool capacity_limited() const {
    if (mode_ != Mode::kInfinite) return true;
    for (const std::uint64_t c : level_caps_) {
      if (c != 0 && c != kInfiniteCapacity) return true;
    }
    return false;
  }

  friend bool operator==(const LinkClassModel&,
                         const LinkClassModel&) = default;

 private:
  enum class Mode : std::uint8_t { kInfinite, kUniform, kMixed };

  [[nodiscard]] std::uint32_t level_of(PeerId a, PeerId b) const {
    const std::uint32_t da =
        a.value() < depths_.size() ? depths_[a.value()] : ~0u;
    const std::uint32_t db =
        b.value() < depths_.size() ? depths_[b.value()] : ~0u;
    return da > db ? da : db;
  }

  Mode mode_ = Mode::kInfinite;
  std::uint64_t uniform_bytes_ = kInfiniteCapacity;
  double modem_fraction_ = 0.0;
  double dsl_fraction_ = 0.0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint32_t> depths_;     // per-peer hierarchy depth
  std::vector<std::uint64_t> level_caps_;  // 0 = no override at that level
};

/// The full link model: propagation delay (generalizing `LatencyModel` —
/// same seeded per-link draw, same default seed, bit-for-bit) plus
/// capacity classes and the backlog horizon. The default is the infinite-
/// capacity synchronous network, which reproduces the historical engine
/// exactly.
struct LinkModel {
  std::uint32_t min_delay = 1;
  std::uint32_t max_delay = 1;
  std::uint64_t seed = 0x1A7E9C1ull;  // matches LatencyModel's default
  LinkClassModel classes{};
  /// Backlog horizon: a link's queue never exceeds capacity * this many
  /// rounds, bounding both delay and transit-ring size.
  std::uint32_t max_backlog_rounds = 64;

  [[nodiscard]] std::uint32_t delay(PeerId a, PeerId b) const {
    if (min_delay == max_delay) return min_delay;
    const std::uint64_t h = link_hash(seed, a, b);
    return min_delay +
           static_cast<std::uint32_t>(h % (max_delay - min_delay + 1));
  }

  [[nodiscard]] std::uint64_t capacity(PeerId a, PeerId b) const {
    return classes.link_capacity(a, b);
  }

  [[nodiscard]] bool capacity_limited() const {
    return classes.capacity_limited();
  }
};

/// Per-link backlog ledger, engine-internal. Open-addressed, preallocated
/// at `configure()` so the steady state never rehashes at typical loads;
/// the active list keeps the round-barrier drain proportional to the
/// number of congested links, not the table size. Mutation (`schedule`,
/// `drain_round`) is engine-thread-only in canonical admission order —
/// nf-lint's nf-link-model check flags calls outside net/engine.cpp.
class LinkQueueTable {
 public:
  /// Outcome of scheduling one message on one link.
  struct Scheduled {
    std::uint64_t queue_rounds;   // >= 1; 1 = no queueing delay
    std::uint64_t clamped_bytes;  // backlog bytes beyond the horizon
  };

  LinkQueueTable() = default;

  /// Sizes the table for a topology of `num_peers` peers (trees and
  /// near-tree overlays: ~2N directed links, kept under 50% load). The
  /// table still grows if an unusually dense overlay overflows it.
  void configure(std::uint64_t num_peers);

  /// Admits `bytes` onto link (from, to) with capacity `capacity`:
  /// returns the transfer rounds the message spends behind the backlog
  /// (clamped to `max_backlog_rounds`) and grows the backlog. `level` is
  /// cached on the slot for the drain's per-level telemetry only (~0u when
  /// no observability is attached — it never affects scheduling). Engine
  /// thread only, canonical order.
  NF_ENGINE_THREAD Scheduled schedule(PeerId from, PeerId to,
                                      std::uint64_t capacity,
                                      std::uint64_t bytes,
                                      std::uint32_t max_backlog_rounds,
                                      std::uint32_t level);

  /// Round-barrier drain: every backlogged link clears up to its capacity.
  /// Calls `level_cb(level, remaining_bytes)` for each link still
  /// backlogged after the drain (level as cached by `set_level`, ~0u when
  /// never set). Returns total remaining backlog bytes. Engine thread
  /// only.
  template <typename LevelCb>
  NF_ENGINE_THREAD std::uint64_t drain_round(LevelCb&& level_cb) {
    std::uint64_t total = 0;
    std::size_t i = 0;
    while (i < active_.size()) {
      Slot& s = slots_[active_[i]];
      const std::uint64_t cleared = s.backlog < s.capacity ? s.backlog
                                                           : s.capacity;
      s.backlog -= cleared;
      if (s.backlog == 0) {
        // Swap-remove: order within the active list does not affect any
        // protocol-visible state, and the walk itself is engine-thread
        // sequential, so this stays deterministic.
        active_[i] = active_.back();
        active_.pop_back();
        continue;
      }
      total += s.backlog;
      level_cb(s.level, s.backlog);
      ++i;
    }
    return total;
  }

  [[nodiscard]] std::size_t backlogged_links() const {
    return active_.size();
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    std::uint64_t backlog = 0;
    std::uint64_t capacity = 0;
    std::uint32_t level = ~0u;
  };

  static constexpr std::uint64_t kEmptyKey = ~0ull;

  [[nodiscard]] static std::uint64_t key_of(PeerId from, PeerId to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

  [[nodiscard]] std::size_t slot_of(std::uint64_t key);
  void grow();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> active_;  // indices of slots with backlog > 0
  std::size_t used_ = 0;
};

}  // namespace nf::net
