#include "net/link_model.h"

#include <algorithm>

namespace nf::net {

LinkClassModel LinkClassModel::uniform(std::uint64_t bytes_per_round) {
  require(bytes_per_round > 0, "link capacity must be positive");
  LinkClassModel m;
  if (bytes_per_round != kInfiniteCapacity) {
    m.mode_ = Mode::kUniform;
    m.uniform_bytes_ = bytes_per_round;
  }
  return m;
}

LinkClassModel LinkClassModel::uniform_class(LinkClass c) {
  return uniform(link_class_capacity(c));
}

LinkClassModel LinkClassModel::mixed(double modem_fraction,
                                     double dsl_fraction,
                                     std::uint64_t seed) {
  require(modem_fraction >= 0.0 && dsl_fraction >= 0.0 &&
              modem_fraction + dsl_fraction <= 1.0,
          "class fractions must be non-negative and sum to <= 1");
  LinkClassModel m;
  m.mode_ = Mode::kMixed;
  m.modem_fraction_ = modem_fraction;
  m.dsl_fraction_ = dsl_fraction;
  m.seed_ = seed;
  return m;
}

void LinkClassModel::set_level_override(std::span<const std::uint32_t> depths,
                                        std::uint32_t level,
                                        std::uint64_t bytes_per_round) {
  require(bytes_per_round > 0, "link capacity must be positive");
  // First override installs the depth vector; later ones must agree so the
  // model stays a single consistent view of the hierarchy.
  if (depths_.empty()) {
    depths_.assign(depths.begin(), depths.end());
  } else {
    require(depths_.size() == depths.size() &&
                std::equal(depths_.begin(), depths_.end(), depths.begin()),
            "level overrides must share one depth vector");
  }
  if (level_caps_.size() <= level) level_caps_.resize(level + 1, 0);
  level_caps_[level] = bytes_per_round;
}

void LinkQueueTable::configure(std::uint64_t num_peers) {
  // Trees and near-tree overlays carry ~2N directed links; keep the table
  // under 50% load. Power-of-two size for mask probing.
  std::size_t want = 64;
  while (want < num_peers * 4) want <<= 1;
  slots_.assign(want, Slot{});
  active_.clear();
  active_.reserve(256);
  used_ = 0;
}

std::size_t LinkQueueTable::slot_of(std::uint64_t key) {
  if (slots_.empty()) configure(16);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void LinkQueueTable::grow() {
  std::vector<Slot> old;
  old.swap(slots_);
  slots_.assign(old.size() * 2, Slot{});
  active_.clear();
  used_ = 0;
  for (const Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    const std::size_t i = slot_of(s.key);
    slots_[i] = s;
    ++used_;
    if (s.backlog != 0) {
      active_.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

LinkQueueTable::Scheduled LinkQueueTable::schedule(
    PeerId from, PeerId to, std::uint64_t capacity, std::uint64_t bytes,
    std::uint32_t max_backlog_rounds, std::uint32_t level) {
  std::size_t i = slot_of(key_of(from, to));
  if (slots_[i].key == kEmptyKey) {
    if ((used_ + 1) * 2 > slots_.size()) {
      grow();
      i = slot_of(key_of(from, to));
    }
    slots_[i].key = key_of(from, to);
    ++used_;
  }
  Slot& s = slots_[i];
  s.capacity = capacity;
  s.level = level;
  // Transfer rounds behind the existing backlog: the message's last byte
  // clears the link after ceil((q + s) / c) rounds of draining.
  const std::uint64_t depth = s.backlog + bytes;
  std::uint64_t rounds = (depth + capacity - 1) / capacity;
  if (rounds < 1) rounds = 1;
  if (rounds > max_backlog_rounds) rounds = max_backlog_rounds;
  const std::uint64_t horizon =
      capacity * static_cast<std::uint64_t>(max_backlog_rounds);
  std::uint64_t clamped = 0;
  if (depth > horizon) {
    clamped = depth - horizon;
  }
  if (s.backlog == 0 && depth > clamped) {
    active_.push_back(static_cast<std::uint32_t>(i));
  }
  s.backlog = depth - clamped;
  return Scheduled{rounds, clamped};
}

}  // namespace nf::net
