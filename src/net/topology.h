// Overlay topology generation.
//
// netFilter runs over an *unstructured* P2P overlay: peers know only their
// immediate neighbors and no global index exists (paper §I). The evaluation
// parameterizes the hierarchy fan-out with b = "number of downstream
// neighbors per peer" (Table III, b = 3), so the default experiment topology
// is a random tree with fan-out b (its BFS hierarchy reproduces exactly that
// fan-out). Richer generators — connected Erdős–Rényi, Watts–Strogatz,
// Barabási–Albert — are provided to show the protocol is topology-agnostic
// (the BFS hierarchy flattens whatever graph it is given).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace nf::net {

/// An undirected overlay graph over peers 0..N-1.
/// Invariants (enforced by `validate`): no self loops, no duplicate edges,
/// symmetric adjacency.
class Topology {
 public:
  explicit Topology(std::uint32_t num_peers);

  void add_edge(PeerId a, PeerId b);
  [[nodiscard]] bool has_edge(PeerId a, PeerId b) const;

  [[nodiscard]] std::uint32_t num_peers() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  /// Directed links (each undirected edge carries traffic both ways) — the
  /// exact-regime capacity bound for the per-link telemetry summary
  /// (obs::LinkSummary tracks every link exactly while its capacity covers
  /// this count; beyond it the summary degrades to a heavy-hitter sketch).
  [[nodiscard]] std::size_t num_directed_links() const {
    return 2 * num_edges_;
  }
  [[nodiscard]] const std::vector<PeerId>& neighbors(PeerId p) const;
  [[nodiscard]] std::size_t degree(PeerId p) const {
    return neighbors(p).size();
  }

  /// True iff the graph is connected (ignoring isolated graphs of size 0/1).
  [[nodiscard]] bool connected() const;

  /// Throws ProtocolError if an invariant is broken.
  void validate() const;

 private:
  std::vector<std::vector<PeerId>> adjacency_;
  std::size_t num_edges_{0};
};

/// Uniform random recursive tree with maximum fan-out `max_children`:
/// peer i > 0 attaches to a uniformly random earlier peer that still has
/// capacity. With max_children = b this reproduces the paper's hierarchy
/// shape (b downstream neighbors per peer, height ~ log_b N).
[[nodiscard]] Topology random_tree(std::uint32_t num_peers,
                                   std::uint32_t max_children, Rng& rng);

/// Connected Erdős–Rényi-style graph: a random spanning tree plus uniformly
/// random extra edges until the average degree reaches `avg_degree`.
[[nodiscard]] Topology random_connected(std::uint32_t num_peers,
                                        double avg_degree, Rng& rng);

/// Watts–Strogatz small world: ring lattice of even degree `k`, each edge
/// rewired with probability `beta`; rewiring that would disconnect or
/// duplicate is skipped.
[[nodiscard]] Topology watts_strogatz(std::uint32_t num_peers, std::uint32_t k,
                                      double beta, Rng& rng);

/// Barabási–Albert preferential attachment: each new peer attaches `m`
/// edges to existing peers with probability proportional to degree.
[[nodiscard]] Topology barabasi_albert(std::uint32_t num_peers,
                                       std::uint32_t m, Rng& rng);

}  // namespace nf::net
