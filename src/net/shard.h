// Shard partitioning and the worker pool behind the parallel round engine.
//
// The engine splits the peer id space into K contiguous ranges ("shards")
// and runs protocol callbacks for all peers of one shard on one worker.
// Contiguity is what makes parallel runs bit-identical to serial ones: a
// serial sweep over peers 0..N-1 visits exactly shard 0's peers, then shard
// 1's, ..., so concatenating per-shard results in shard order reproduces
// the serial order with no sorting by construction (see net/engine.h for
// the full determinism contract).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/capability.h"
#include "common/error.h"
#include "common/ids.h"

namespace nf::net {

/// K contiguous, near-equal ranges over peer ids 0..N-1. Shard k owns
/// [begin(k), end(k)); a peer's shard is recoverable in O(1).
class ShardPlan {
 public:
  ShardPlan(std::uint32_t num_peers, std::uint32_t num_shards)
      : num_peers_(num_peers),
        num_shards_(num_shards == 0 ? 1 : num_shards) {
    if (num_shards_ > num_peers_ && num_peers_ > 0) num_shards_ = num_peers_;
    if (num_peers_ == 0) num_shards_ = 1;
  }

  NF_REENTRANT [[nodiscard]] std::uint32_t num_shards() const {
    return num_shards_;
  }
  NF_REENTRANT [[nodiscard]] std::uint32_t num_peers() const {
    return num_peers_;
  }

  NF_REENTRANT [[nodiscard]] std::uint32_t begin(std::uint32_t shard) const {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(num_peers_) * shard) / num_shards_);
  }
  NF_REENTRANT [[nodiscard]] std::uint32_t end(std::uint32_t shard) const {
    return begin(shard + 1);
  }

  NF_REENTRANT [[nodiscard]] std::uint32_t shard_of(PeerId p) const {
    // Inverse of begin(): floor((idx * K + K - 1) / N) overshoots on range
    // boundaries, so compute the candidate and correct by comparison.
    const std::uint64_t idx = p.value();
    auto shard = static_cast<std::uint32_t>((idx * num_shards_) / num_peers_);
    while (shard + 1 < num_shards_ && idx >= begin(shard + 1)) ++shard;
    while (shard > 0 && idx < begin(shard)) --shard;
    return shard;
  }

 private:
  std::uint32_t num_peers_;
  std::uint32_t num_shards_;
};

/// Persistent worker pool: `dispatch(tasks, fn)` runs fn(k) for every
/// k < tasks across the workers and the calling thread, returning after all
/// complete (a full barrier). Exceptions thrown by fn are captured and the
/// first one is rethrown on the calling thread after the barrier.
///
/// One pool instance serves one engine; dispatch() is not reentrant.
class ShardPool {
 public:
  /// Spawns `num_workers` threads (may be 0: dispatch then runs inline).
  explicit ShardPool(std::uint32_t num_workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  NF_ENGINE_THREAD void dispatch(std::uint32_t tasks,
                                 const std::function<void(std::uint32_t)>& fn);

  [[nodiscard]] std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  NF_SHARD_CONTEXT void worker_loop();
  NF_SHARD_CONTEXT void run_tasks();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::uint32_t)>* fn_ = nullptr;
  std::uint32_t num_tasks_ = 0;
  std::uint32_t next_task_ = 0;
  std::uint32_t active_workers_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace nf::net
