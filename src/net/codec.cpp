#include "net/codec.h"

#include <cstring>
#include <limits>

namespace nf::net {

void put_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in,
                         std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    ensure(offset < in.size(), "truncated varint");
    ensure(shift < 64, "over-long varint");
    const std::uint8_t byte = in[offset++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

Bytes encode_sorted_ids(std::span<const std::uint64_t> ids) {
  Bytes out;
  put_varint(out, ids.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(i == 0 || ids[i] >= prev, "ids must be sorted ascending");
    put_varint(out, ids[i] - prev);
    prev = ids[i];
  }
  return out;
}

std::vector<std::uint64_t> decode_sorted_ids(
    std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(in, offset);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    prev += get_varint(in, offset);
    out.push_back(prev);
  }
  ensure(offset == in.size(), "trailing bytes after id list");
  return out;
}

Bytes encode_pairs(const ValueMap<ItemId, std::uint64_t>& map) {
  Bytes out;
  put_varint(out, map.size());
  std::uint64_t prev = 0;
  for (const auto& [id, value] : map) {
    put_varint(out, id.value() - prev);
    put_varint(out, value);
    prev = id.value();
  }
  return out;
}

ValueMap<ItemId, std::uint64_t> decode_pairs(
    std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(in, offset);
  std::vector<std::pair<ItemId, std::uint64_t>> pairs;
  pairs.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    prev += get_varint(in, offset);
    const std::uint64_t value = get_varint(in, offset);
    pairs.emplace_back(ItemId(prev), value);
  }
  ensure(offset == in.size(), "trailing bytes after pair list");
  return ValueMap<ItemId, std::uint64_t>::from_unsorted(std::move(pairs));
}

Bytes encode_aggregates(std::span<const std::uint64_t> values) {
  Bytes out;
  put_varint(out, values.size());
  for (std::uint64_t v : values) put_varint(out, v);
  return out;
}

std::vector<std::uint64_t> decode_aggregates(
    std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(in, offset);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(get_varint(in, offset));
  }
  ensure(offset == in.size(), "trailing bytes after aggregate vector");
  return out;
}

Bytes encode_aggregates_fixed32(std::span<const std::uint64_t> values) {
  Bytes out;
  put_varint(out, values.size());
  for (std::uint64_t v : values) {
    const auto clamped = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        v, std::numeric_limits<std::uint32_t>::max()));
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<std::uint8_t>(clamped >> shift));
    }
  }
  return out;
}

void encode_sorted_ids_to(PayloadWriter& w,
                          std::span<const std::uint64_t> ids) {
  w.put_varint(ids.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(i == 0 || ids[i] >= prev, "ids must be sorted ascending");
    w.put_varint(ids[i] - prev);
    prev = ids[i];
  }
}

void encode_pairs_to(PayloadWriter& w,
                     const ValueMap<ItemId, std::uint64_t>& map) {
  w.put_varint(map.size());
  std::uint64_t prev = 0;
  for (const auto& [id, value] : map) {
    w.put_varint(id.value() - prev);
    w.put_varint(value);
    prev = id.value();
  }
}

void encode_aggregates_to(PayloadWriter& w,
                          std::span<const std::uint64_t> values) {
  w.put_varint(values.size());
  for (std::uint64_t v : values) w.put_varint(v);
}

void add_aggregates_from(std::span<const std::uint8_t> in,
                         std::span<std::uint64_t> acc) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(in, offset);
  ensure(count == acc.size(), "aggregate vector width mismatch");
  const std::uint8_t* __restrict bytes = in.data();
  std::uint64_t* __restrict out = acc.data();
  std::uint64_t i = 0;
  while (i < count) {
    // SWAR fast path: one 8-byte load tests the continuation bits of the
    // next 8 lanes at once. Group aggregates are mostly small (sparse item
    // sets, values < 128), so runs of single-byte varints dominate and the
    // widening add below autovectorizes — the scalar get_varint loop only
    // runs where a multi-byte value breaks the run.
    if (i + 8 <= count && offset + 8 <= in.size()) {
      std::uint64_t word;
      std::memcpy(&word, bytes + offset, sizeof(word));
      if ((word & 0x8080808080808080ull) == 0) {
        for (std::size_t k = 0; k < 8; ++k) out[i + k] += bytes[offset + k];
        offset += 8;
        i += 8;
        continue;
      }
    }
    out[i++] += get_varint(in, offset);
  }
  ensure(offset == in.size(), "trailing bytes after aggregate vector");
}

std::vector<std::uint64_t> decode_aggregates_fixed32(
    std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(in, offset);
  ensure(in.size() - offset == count * 4, "fixed32 length mismatch");
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(in[offset++]) << shift;
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace nf::net
