// Protocol session runtime: composable phases multiplexed over one engine
// run (DESIGN.md §6d).
//
// A *session* is one logical protocol execution — e.g. one IFI query — made
// of an ordered list of *phases* (convergecast up, multicast down, ...).
// Classic orchestration runs each phase as its own Protocol on its own
// Engine::run, which inserts a global barrier between phases: no peer may
// enter phase k+1 until every peer finished phase k. The SessionMux removes
// that barrier. It is a single net::Protocol that routes envelopes by their
// (session, phase) tags to Phase components, and phases open *per peer*: a
// peer transitions the moment its own trigger arrives (a completed subtree,
// a multicast reaching it), so independent subtrees pipeline freely and N
// sessions share one engine run.
//
// Phase lifecycle at one peer: closed -> open (on_start fires exactly once)
// -> handling on_message/on_round callbacks. Opening happens through one of
//   - PhaseStart::kAllPeers: the mux opens the phase at every alive peer on
//     its first tick (entry phases);
//   - an earlier phase calling PhaseContext::open_phase() from a callback
//     (the per-peer transition edge);
//   - a tagged message arriving for a closed phase with open_on_message
//     (multicast-style phases where receipt *is* the trigger); with
//     open_on_message off the envelope is buffered and replayed in arrival
//     order when the phase opens (safety net for convergecast-style phases
//     that must initialize local state before merging children).
// done() is a session-global predicate (e.g. "root merged all children");
// the mux keeps the engine alive until every phase of every session is
// done.
//
// Shard safety: the per-peer open flags and buffers live in byte/slot
// arenas touched only by the owning peer's callbacks; per-session traffic
// tallies are commutative atomics; phase done() flags follow the
// single-writer-read-at-barrier rule. The mux itself adds no cross-peer
// state, so a mux run is bit-identical for any --threads=K.
#pragma once

#include <any>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/capability.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/engine.h"
#include "obs/context.h"

namespace nf::net {

class SessionMux;
class Phase;

/// How a phase opens at a peer when nothing opened it explicitly.
enum class PhaseStart : std::uint8_t {
  /// Opened at every alive peer by the mux's first on_round tick.
  kAllPeers,
  /// Stays closed until open_phase() or (with open_on_message) a message.
  kOnDemand,
};

struct PhaseOptions {
  PhaseStart start = PhaseStart::kOnDemand;
  /// A message for a closed phase opens it (true) or is buffered until the
  /// phase opens (false). Buffering is the right choice when on_start must
  /// initialize per-peer state that on_payload merges into.
  bool open_on_message = true;
  /// Phase name for trace spans; must be a string literal. Empty disables
  /// span events for this phase.
  const char* name = "";
};

/// Per-session traffic attribution: bytes/messages this session's phases
/// sent, by category. Counts protocol sends as admitted; the reliability
/// layer's retransmissions and ACKs are engine-level and appear only in the
/// global TrafficMeter.
struct SessionTraffic {
  std::string name;
  std::array<std::uint64_t, kNumTrafficCategories> bytes{};
  std::array<std::uint64_t, kNumTrafficCategories> msgs{};

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t t = 0;
    for (const std::uint64_t b : bytes) t += b;
    return t;
  }
  [[nodiscard]] std::uint64_t total_msgs() const {
    std::uint64_t t = 0;
    for (const std::uint64_t m : msgs) t += m;
    return t;
  }
};

/// Per-peer view handed to Phase callbacks: the engine context plus the
/// (session, phase) identity, so sends are tagged automatically and the
/// phase can open later phases of its own session at this peer.
class PhaseContext {
 public:
  NF_REENTRANT [[nodiscard]] PeerId self() const { return ctx_.self(); }
  NF_REENTRANT [[nodiscard]] std::uint64_t round() const {
    return ctx_.round();
  }
  NF_REENTRANT [[nodiscard]] const Overlay& overlay() const {
    return ctx_.overlay();
  }
  NF_REENTRANT [[nodiscard]] const std::vector<PeerId>& neighbors() const {
    return ctx_.neighbors();
  }
  NF_REENTRANT [[nodiscard]] bool is_alive(PeerId p) const {
    return ctx_.is_alive(p);
  }
  NF_REENTRANT [[nodiscard]] SessionId session() const { return session_; }
  NF_REENTRANT [[nodiscard]] PhaseId phase() const { return phase_; }

  /// Lineage id of the message whose arrival triggered this callback, or
  /// kNoLineage for round-originated work. During buffered replay this is
  /// the replayed envelope's own id, not the delivery that opened the
  /// phase — so causality survives the buffering detour.
  NF_REENTRANT [[nodiscard]] obs::LineageId cause() const { return cause_; }

  /// Sends `payload` tagged with this phase's (session, phase) and charges
  /// it to the session's traffic tally. Prefer TypedPhase::send, which
  /// type-checks the payload at compile time. The send inherits cause() as
  /// its causal parent.
  NF_REENTRANT void send_raw(PeerId to, TrafficCategory category,
                             std::uint64_t bytes, std::any payload);

  /// As send_raw(), with an explicit causal parent set — for sends that
  /// merge several arrivals (convergecast forwards). Zero ids are ignored.
  NF_REENTRANT void send_raw(PeerId to, TrafficCategory category,
                             std::uint64_t bytes, std::any payload,
                             std::span<const obs::LineageId> parents);

  /// A writer into the executing shard's outbox slab (Context::
  /// flat_payload()); pair with send_flat() from the same callback.
  NF_REENTRANT [[nodiscard]] PayloadWriter flat_payload() {
    return ctx_.flat_payload();
  }

  /// Resolves a delivered envelope's flat payload. During buffered replay
  /// the mux substitutes its owned copy of the bytes (the originating slab
  /// slot has been reclaimed by then), so phases read payloads only through
  /// this accessor, never through the raw ref.
  NF_REENTRANT [[nodiscard]] std::span<const std::uint8_t> payload_bytes(
      const Envelope& env) const {
    return replay_payload_active_ ? replay_payload_ : ctx_.payload_bytes(env);
  }

  /// Flat tagged send, charged to the session's traffic tally. The hot-path
  /// counterpart of send_raw(): ships a slab span, never an owning object.
  NF_REENTRANT void send_flat(PeerId to, TrafficCategory category,
                              std::uint64_t bytes, PayloadRef flat);
  NF_REENTRANT void send_flat(PeerId to, TrafficCategory category,
                              std::uint64_t bytes, PayloadRef flat,
                              std::span<const obs::LineageId> parents);

  /// Opens `phase` of this session at this peer (idempotent): fires its
  /// on_start now and replays any buffered messages. This is the per-peer
  /// phase-transition edge — each peer advances on its own trigger, no
  /// global barrier.
  NF_REENTRANT void open_phase(PhaseId phase);

 private:
  friend class SessionMux;
  PhaseContext(SessionMux& mux, Context& ctx, SessionId session,
               PhaseId phase, obs::LineageId cause)
      : mux_(mux), ctx_(ctx), session_(session), phase_(phase),
        cause_(cause) {}

  SessionMux& mux_;
  Context& ctx_;
  SessionId session_;
  PhaseId phase_;
  obs::LineageId cause_;
  // Set by the mux while replaying a buffered envelope: payload_bytes()
  // returns this owned copy instead of resolving the (stale) slab ref.
  std::span<const std::uint8_t> replay_payload_;
  bool replay_payload_active_ = false;
};

/// One phase of a session. Implementations follow the same shard-safety
/// contract as net::Protocol; callbacks run on the owning peer's shard
/// except on_run_start (engine thread, before the first round).
class Phase {
 public:
  virtual ~Phase() = default;

  /// Size per-peer arenas here; called once per engine run.
  NF_ENGINE_THREAD virtual void on_run_start(const Overlay& /*overlay*/) {}

  /// Fires exactly once per peer, when the phase opens there.
  NF_SHARD_CONTEXT virtual void on_start(PhaseContext& /*ctx*/) {}

  /// Called once per alive peer per round while the phase is open at that
  /// peer and not done. Most event-driven phases need no tick.
  NF_SHARD_CONTEXT virtual void on_round(PhaseContext& /*ctx*/) {}

  /// Called for each envelope tagged with this phase.
  NF_SHARD_CONTEXT virtual void on_message(PhaseContext& ctx,
                                           Envelope&& env) = 0;

  /// Session-global completion. Polled on the engine thread; the engine
  /// stays alive until every phase of every session is done.
  NF_REENTRANT [[nodiscard]] virtual bool done() const = 0;
};

/// CRTP-free typed phase base: performs the single std::any_cast at the
/// dispatch boundary so concrete phases exchange `M` values directly —
/// payload type mismatches in phase code fail at compile time, not as a
/// null any_cast at runtime.
template <typename M>
class TypedPhase : public Phase {
 public:
  using Message = M;

  NF_SHARD_CONTEXT void on_message(PhaseContext& ctx, Envelope&& env) final {
    M* msg = std::any_cast<M>(&env.payload);
    ensure(msg != nullptr, "session phase payload type mismatch");
    on_payload(ctx, std::move(*msg), env.from);
  }

 protected:
  /// Typed delivery hook; `from` is the sending peer.
  NF_SHARD_CONTEXT virtual void on_payload(PhaseContext& ctx, M&& msg,
                                           PeerId from) = 0;

  /// Typed send: only this phase's message type compiles.
  NF_REENTRANT void send(PhaseContext& ctx, PeerId to,
                         TrafficCategory category, std::uint64_t bytes,
                         M msg) const {
    ctx.send_raw(to, category, bytes, std::any(std::move(msg)));
  }

  /// Typed send with an explicit causal parent set (multi-parent merges).
  NF_REENTRANT void send(PhaseContext& ctx, PeerId to,
                         TrafficCategory category, std::uint64_t bytes, M msg,
                         std::span<const obs::LineageId> parents) const {
    ctx.send_raw(to, category, bytes, std::any(std::move(msg)), parents);
  }
};

/// Base for hot-path phases whose messages are flat slab spans
/// (net/payload.h): the dispatch boundary resolves the envelope's ref (or
/// the mux's buffered copy) to bytes once, and concrete phases decode with
/// the codecs in net/codec.h. No owning payload object exists at any point.
class FlatPhase : public Phase {
 public:
  NF_SHARD_CONTEXT void on_message(PhaseContext& ctx, Envelope&& env) final {
    on_flat(ctx, ctx.payload_bytes(env), env.from);
  }

 protected:
  /// Flat delivery hook; `bytes` is valid for this callback only. Runs every
  /// warmed steady-state round, so overrides must stay heap-free (and must
  /// repeat both capability macros — nf-lint models no inheritance).
  NF_SHARD_CONTEXT NF_STEADY_NOALLOC virtual void on_flat(
      PhaseContext& ctx, std::span<const std::uint8_t> bytes,
      PeerId from) = 0;
};

/// Routes tagged envelopes to per-session Phase components and drives their
/// lifecycle. Register sessions and phases before Engine::run; the mux does
/// not own the phases (they usually hold callbacks into caller state).
class SessionMux final : public Protocol {
 public:
  explicit SessionMux(obs::Context* obs = nullptr) : obs_(obs) {}

  /// Opens a new session; `name` prefixes trace spans and obs counters
  /// ("<name>/<phase>"). An empty name keeps bare phase names (single
  /// session runs) and reports as "s<index>" in traffic summaries.
  [[nodiscard]] SessionId add_session(std::string name = {});

  /// Appends `phase` to `session`'s phase list and returns its PhaseId
  /// (list position). The phase must outlive the mux's last run.
  PhaseId add_phase(SessionId session, Phase& phase, PhaseOptions options);

  // net::Protocol — the engine-facing half.
  NF_ENGINE_THREAD void on_run_start(const Overlay& overlay) override;
  NF_ENGINE_THREAD void on_round_begin(std::uint64_t round) override;
  NF_SHARD_CONTEXT void on_round(Context& ctx) override;
  NF_SHARD_CONTEXT void on_message(Context& ctx, Envelope&& env) override;
  NF_ENGINE_THREAD void on_run_end() override;
  NF_REENTRANT [[nodiscard]] bool active() const override;

  /// True iff every phase of `session` is done.
  [[nodiscard]] bool session_done(SessionId session) const;
  /// True iff every phase of every session is done.
  [[nodiscard]] bool all_done() const { return !active(); }

  /// Run-relative round at which `session` completed (its gating delivery's
  /// round: completion is detected at the next round boundary and
  /// attributed to the round that flipped the last done() flag). Falls back
  /// to the rounds the run executed when the session never completed. Read
  /// after the run.
  [[nodiscard]] std::uint64_t done_round(SessionId session) const;

  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }

  /// Per-session traffic attribution snapshot (read after the run).
  [[nodiscard]] std::vector<SessionTraffic> traffic() const;

  /// Publishes each session's nonzero per-category tallies as
  /// "session/<name>/<category>_bytes" (+ "_msgs") registry counters, so
  /// JSON reports and nf-inspect can break traffic down per query. No-op
  /// without an obs context. Call once, after the run.
  void flush_obs_counters();

 private:
  /// A buffered early arrival. The envelope's flat payload (if any) is
  /// copied out of its slab at buffering time — the slot slab is reclaimed
  /// when its delivery round ends, but the replay happens rounds later.
  struct BufferedEnvelope {
    Envelope env;
    std::vector<std::uint8_t> flat_bytes;
  };

  struct PhaseSlot {
    Phase* phase = nullptr;
    PhaseOptions options;
    const char* span_name = "";  // literal or tracer-interned; "" = no span
    PeerArena<bool> opened;
    // Sized only when !open_on_message; arrival-order replay queues.
    PeerArena<std::vector<BufferedEnvelope>> buffered;
    std::atomic<bool> span_begun{false};
    bool span_ended = false;  // engine thread only (on_round_begin)
  };

  struct SessionSlot {
    std::string name;
    std::vector<std::unique_ptr<PhaseSlot>> phases;
    std::array<std::atomic<std::uint64_t>, kNumTrafficCategories> bytes{};
    std::array<std::atomic<std::uint64_t>, kNumTrafficCategories> msgs{};
    // Engine thread only (on_round_begin / on_run_end); kNoRound until the
    // session's last done() flag is observed flipped.
    std::uint64_t done_round = obs::LineageRecorder::kNoRound;
  };

  friend class PhaseContext;

  [[nodiscard]] PhaseSlot& slot(SessionId s, PhaseId p) const;
  [[nodiscard]] std::string display_name(SessionId s) const;
  NF_REENTRANT void open_at(Context& ctx, SessionId s, PhaseId p,
                            obs::LineageId cause);
  NF_REENTRANT void charge(SessionId s, TrafficCategory category,
                           std::uint64_t bytes);
  NF_REENTRANT void maybe_begin_span(PhaseSlot& slot);
  NF_ENGINE_THREAD void record_done_rounds();

  obs::Context* obs_;
  std::vector<std::unique_ptr<SessionSlot>> sessions_;
  std::uint64_t rounds_seen_ = 0;  ///< on_round_begin calls this run
};

}  // namespace nf::net
