#include "net/shard.h"

namespace nf::net {

ShardPool::ShardPool(std::uint32_t num_workers) {
  workers_.reserve(num_workers);
  for (std::uint32_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ShardPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      ++active_workers_;
    }
    run_tasks();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    work_done_.notify_one();
  }
}

void ShardPool::run_tasks() {
  for (;;) {
    std::uint32_t task;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (next_task_ >= num_tasks_) return;
      task = next_task_++;
    }
    try {
      (*fn_)(task);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ShardPool::dispatch(std::uint32_t tasks,
                         const std::function<void(std::uint32_t)>& fn) {
  if (tasks == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    num_tasks_ = tasks;
    next_task_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();
  // The caller participates: with K workers and K+1 shards nothing idles,
  // and with 0 workers this degenerates to a plain serial loop.
  run_tasks();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] {
      return active_workers_ == 0 && next_task_ >= num_tasks_;
    });
    fn_ = nullptr;
    num_tasks_ = 0;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace nf::net
