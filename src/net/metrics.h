// Traffic accounting.
//
// The paper's performance metric is "the average number of bytes propagated
// per peer" (§IV), decomposed into candidate filtering cost, candidate
// dissemination cost and candidate aggregation cost. The meter charges every
// message to its *sender* (bytes propagated) under a category, so each bench
// can print exactly the series the paper plots.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/ids.h"

namespace nf::net {

enum class TrafficCategory : std::uint8_t {
  kFiltering = 0,      ///< group aggregates flowing up (phase 1)
  kDissemination = 1,  ///< heavy group ids flowing down (phase 2a)
  kAggregation = 2,    ///< candidate <id,value> pairs flowing up (phase 2b)
  kNaive = 3,          ///< naive approach: full item sets flowing up
  kGossip = 4,         ///< push-sum gossip traffic
  kSampling = 5,       ///< parameter-estimation sampling traffic
  kControl = 6,        ///< heartbeats, hierarchy formation/repair
  kHostReport = 7,     ///< non-participating peers reporting local sets
  kApprox = 8,         ///< approximate-baseline sketch traffic
};
inline constexpr std::size_t kNumTrafficCategories = 9;

[[nodiscard]] constexpr std::string_view to_string(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kFiltering: return "filtering";
    case TrafficCategory::kDissemination: return "dissemination";
    case TrafficCategory::kAggregation: return "aggregation";
    case TrafficCategory::kNaive: return "naive";
    case TrafficCategory::kGossip: return "gossip";
    case TrafficCategory::kSampling: return "sampling";
    case TrafficCategory::kControl: return "control";
    case TrafficCategory::kHostReport: return "host-report";
    case TrafficCategory::kApprox: return "approx";
  }
  return "?";
}

class TrafficMeter {
 public:
  /// Per-category byte counts for one peer, indexed by TrafficCategory.
  using CategoryArray = std::array<std::uint64_t, kNumTrafficCategories>;

  explicit TrafficMeter(std::uint32_t num_peers);

  void record(PeerId sender, TrafficCategory category, std::uint64_t bytes);

  /// Charges `num_messages` messages totalling `bytes` in one update — the
  /// engine's barrier merge coalesces each (sender, category) run of the
  /// round's send stream into a single call.
  void record_batch(PeerId sender, TrafficCategory category,
                    std::uint64_t bytes, std::uint64_t num_messages);

  /// Total bytes sent across all peers in one category.
  [[nodiscard]] std::uint64_t total(TrafficCategory category) const;

  /// Total bytes sent across all peers, all categories.
  [[nodiscard]] std::uint64_t total() const;

  /// The paper's metric: average bytes propagated per peer, one category.
  [[nodiscard]] double per_peer(TrafficCategory category) const;

  /// The paper's metric over all categories.
  [[nodiscard]] double per_peer() const;

  /// Bytes sent by one peer, all categories.
  [[nodiscard]] std::uint64_t peer_total(PeerId p) const;

  /// Maximum bytes sent by any single peer (bottleneck check, §IV-A).
  [[nodiscard]] std::uint64_t max_peer_total() const;

  [[nodiscard]] std::uint32_t num_peers() const {
    return static_cast<std::uint32_t>(per_peer_.size());
  }

  /// Number of messages recorded (diagnostics).
  [[nodiscard]] std::uint64_t num_messages() const { return num_messages_; }

  /// Bytes sent by peer `p`, broken down by category (indexed by
  /// TrafficCategory).
  [[nodiscard]] const CategoryArray& per_peer_breakdown(PeerId p) const;

  /// Writes the full breakdown as CSV: a header row of category names,
  /// then one `peer,<bytes per category>,total` row per peer, then a
  /// `total,...` footer matching total(category)/total().
  void write_csv(std::ostream& os) const;

  void reset();

 private:
  std::vector<CategoryArray> per_peer_;
  CategoryArray totals_{};
  std::uint64_t num_messages_{0};
};

}  // namespace nf::net
