// HyperLogLog distinct-count sketch.
//
// Setting netFilter optimally (paper §IV-E) needs an estimate of n, the
// number of distinct items system-wide. The paper defers the estimator to
// its tech report; we instantiate it with the natural mergeable choice: each
// peer sketches its local item ids into a HyperLogLog and the sketches are
// OR-merged up the hierarchy — one fixed-size message per peer, exactly the
// shape hierarchical aggregation wants. With 2^12 registers the relative
// error is ~1.6%, far tighter than the optimizer needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace nf::agg {

class HyperLogLog {
 public:
  /// `precision` p: 2^p registers, standard error ~ 1.04 / sqrt(2^p).
  /// Valid range 4..18.
  explicit HyperLogLog(std::uint32_t precision = 12);

  void insert(ItemId item);

  /// Merge = register-wise max. Both sketches must share a precision.
  void merge(const HyperLogLog& other);

  /// Bias-corrected cardinality estimate (original HLL corrections:
  /// linear counting at the low end, no large-range correction needed for
  /// 64-bit hashes).
  [[nodiscard]] double estimate() const;

  /// Modelled wire size: one byte per register.
  [[nodiscard]] std::uint64_t wire_bytes() const { return registers_.size(); }

  [[nodiscard]] std::uint32_t precision() const { return precision_; }

  friend bool operator==(const HyperLogLog&, const HyperLogLog&) = default;

 private:
  std::uint32_t precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace nf::agg
