// Flat slab-backed counterparts of the generic hierarchy protocols
// (convergecast / multicast) — the million-peer hot path.
//
// Where the typed phases (agg/convergecast.h, agg/multicast.h) ship owning
// C++ objects through `std::any` envelopes, these phases encode every
// message into the engine's slab arenas with the varint/delta codecs
// (net/codec.h) and ship a PayloadRef. Receivers decode straight from the
// delivered span; forwards are span copies. Combined with the
// structure-of-arrays state below, a warmed loss-free run performs zero
// heap allocations inside the round loop (tests/steady_alloc_test.cpp).
//
// State layout (DESIGN.md §6f): FlatAggregateConvergecastPhase keeps the
// per-peer f×g group sums in one contiguous PeerRowArena<u64> — peer-major
// rows, so a merge is a contiguous column add into the parent's row — and
// decomposes the per-peer bookkeeping (pending counts, sent flags, causal
// parents) into dense parallel arenas instead of a per-peer struct with
// owning members.
//
// Wire-size charging: pass `flat_bytes != 0` to charge the paper's flat
// field model (WireModel::kFlatFields) while still shipping the encoded
// bytes, or 0 to charge the actual encoded length (kVarintDelta). Both
// models therefore exercise the same payload path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/capability.h"
#include "common/error.h"
#include "common/ids.h"
#include "common/item_source.h"
#include "net/codec.h"
#include "net/session.h"
#include "obs/context.h"

namespace nf::agg {

/// Bottom-up sum of fixed-width aggregate vectors (paper §III-A.2, the f×g
/// group sums of netFilter phase 1), flat on the wire and SoA in memory.
/// Shard-safe: callbacks for peer p touch only p's row/slots; `complete_`
/// has a single writer (the root's shard) and is read at the barrier.
class FlatAggregateConvergecastPhase final : public net::FlatPhase {
 public:
  /// Fills peer p's zeroed row with its local contribution.
  using LocalFn = std::function<void(PeerId, std::span<std::uint64_t>)>;
  /// Fires at the root, inside the run, the moment the global sums are
  /// complete — the hook a downstream phase transition chains from.
  using CompleteFn =
      std::function<void(net::PhaseContext&, std::span<const std::uint64_t>)>;

  FlatAggregateConvergecastPhase(const Hierarchy& hierarchy,
                                 net::TrafficCategory category,
                                 std::uint32_t width, LocalFn local,
                                 std::uint64_t flat_bytes,
                                 obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        width_(width),
        local_(std::move(local)),
        flat_bytes_(flat_bytes),
        obs_(obs) {
    if (obs != nullptr) {
      obs_merges_ = &obs->registry.counter("convergecast/merges");
      obs_msg_bytes_ = &obs->registry.histogram("convergecast/msg_bytes");
    }
  }

  void set_on_complete(CompleteFn on_complete) {
    on_complete_ = std::move(on_complete);
  }

  void on_run_start(const net::Overlay& overlay) override {
    const auto n = overlay.num_peers();
    complete_.store(false, std::memory_order_relaxed);
    sums_.assign(n, width_, 0);
    pending_.assign(n, 0);
    init_.assign(n, false);
    sent_.assign(n, false);
    sent_bytes_.assign(n, 0);
    // Causal-parent slots, one contiguous store with per-peer offsets:
    // each peer records at most 1 (phase-open cause) + |downstream| ids.
    parent_count_.assign(n, 0);
    parent_offset_.assign(n + 1, 0);
    std::uint32_t off = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
      parent_offset_[p] = off;
      if (!hierarchy_.is_member(PeerId(p))) continue;  // no slots needed
      off += 1 + static_cast<std::uint32_t>(
                     hierarchy_.downstream(PeerId(p)).size());
    }
    parent_offset_[n] = off;
    parents_.assign(off, obs::kNoLineage);
  }

  void on_start(net::PhaseContext& ctx) override {
    const PeerId p = ctx.self();
    if (!hierarchy_.is_member(p)) return;
    local_(p, sums_.row(p));
    pending_[p] =
        static_cast<std::uint32_t>(hierarchy_.downstream(p).size());
    init_[p] = true;
    push_parent(p, ctx.cause());
    maybe_forward(ctx);
  }

  [[nodiscard]] bool done() const override {
    return complete_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool complete() const { return done(); }

  /// The global sums; valid once complete().
  [[nodiscard]] std::span<const std::uint64_t> result() const {
    require(complete(), "convergecast not complete");
    return sums_.row(hierarchy_.root());
  }

  /// Bytes this peer propagated upward (0 for the root). Valid after run.
  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return sent_bytes_[p];
  }

 protected:
  NF_SHARD_CONTEXT NF_STEADY_NOALLOC void on_flat(
      net::PhaseContext& ctx, std::span<const std::uint8_t> bytes,
      PeerId /*from*/) override {
    const PeerId p = ctx.self();
    ensure(init_[p] != 0, "convergecast message before initialization");
    ensure(pending_[p] > 0, "unexpected convergecast message");
    if (obs_ != nullptr) {
      obs_merges_->add(1);
      obs_->tracer.record(obs::EventKind::kMerge, "convergecast.merge",
                          p.value(), sent_bytes_[p]);
    }
    // The merge: decode-accumulate into this peer's row, no intermediate
    // vector. Column adds stay contiguous because rows are peer-major.
    net::add_aggregates_from(bytes, sums_.row(p));
    --pending_[p];
    push_parent(p, ctx.cause());
    maybe_forward(ctx);
  }

 private:
  void push_parent(PeerId p, obs::LineageId id) {
    const std::uint32_t slot = parent_offset_[p.value()] +
                               parent_count_[p]++;
    ensure(slot < parent_offset_[p.value() + 1], "parent slots exhausted");
    parents_[slot] = id;
  }

  void maybe_forward(net::PhaseContext& ctx) {
    const PeerId p = ctx.self();
    if (pending_[p] != 0 || sent_[p] != 0) return;
    if (p == hierarchy_.root()) {
      complete_.store(true, std::memory_order_relaxed);
      if (on_complete_) on_complete_(ctx, sums_.row(p));
      return;
    }
    sent_[p] = true;
    net::PayloadWriter w = ctx.flat_payload();
    net::encode_aggregates_to(w, sums_.row(p));
    const net::PayloadRef ref = w.finish();
    const std::uint64_t bytes = flat_bytes_ != 0 ? flat_bytes_ : ref.length;
    sent_bytes_[p] = bytes;
    if (obs_ != nullptr) obs_msg_bytes_->observe(bytes);
    const std::span<const obs::LineageId> parents(
        parents_.data() + parent_offset_[p.value()], parent_count_[p]);
    ctx.send_flat(hierarchy_.upstream(p), category_, bytes, ref, parents);
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  std::uint32_t width_;
  LocalFn local_;
  std::uint64_t flat_bytes_;
  obs::Context* obs_;
  obs::Counter* obs_merges_ = nullptr;
  obs::Histogram* obs_msg_bytes_ = nullptr;
  CompleteFn on_complete_;

  // SoA per-peer state (see header comment).
  PeerRowArena<std::uint64_t> sums_;
  PeerArena<std::uint32_t> pending_;
  PeerArena<bool> init_;
  PeerArena<bool> sent_;
  PeerArena<std::uint64_t> sent_bytes_;
  PeerArena<std::uint32_t> parent_count_;
  std::vector<std::uint32_t> parent_offset_;
  std::vector<obs::LineageId> parents_;
  std::atomic<bool> complete_{false};
};

/// Bottom-up merge of sorted <item, value> maps (netFilter phase 2), flat
/// pairs on the wire. Accumulators are ValueMaps — merging sorted runs
/// allocates, so this phase is outside the zero-alloc guarantee (DESIGN.md
/// §6f) — but no payload object ever crosses the wire.
class FlatPairsConvergecastPhase final : public net::FlatPhase {
 public:
  using Pairs = ValueMap<ItemId, Value>;
  using LocalFn = std::function<Pairs(PeerId)>;
  /// Modelled wire size of one message; pass {} to charge the encoded
  /// length (WireModel::kVarintDelta).
  using WireBytesFn = std::function<std::uint64_t(const Pairs&)>;
  using CompleteFn = std::function<void(net::PhaseContext&, const Pairs&)>;

  FlatPairsConvergecastPhase(const Hierarchy& hierarchy,
                             net::TrafficCategory category, LocalFn local,
                             WireBytesFn wire_bytes,
                             obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        local_(std::move(local)),
        wire_bytes_(std::move(wire_bytes)),
        obs_(obs) {
    if (obs != nullptr) {
      obs_merges_ = &obs->registry.counter("convergecast/merges");
      obs_msg_bytes_ = &obs->registry.histogram("convergecast/msg_bytes");
    }
  }

  void set_on_complete(CompleteFn on_complete) {
    on_complete_ = std::move(on_complete);
  }

  void on_run_start(const net::Overlay& overlay) override {
    const auto n = overlay.num_peers();
    complete_.store(false, std::memory_order_relaxed);
    acc_.assign(n, Pairs{});
    pending_.assign(n, 0);
    init_.assign(n, false);
    sent_.assign(n, false);
    sent_bytes_.assign(n, 0);
    parent_count_.assign(n, 0);
    parent_offset_.assign(n + 1, 0);
    std::uint32_t off = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
      parent_offset_[p] = off;
      if (!hierarchy_.is_member(PeerId(p))) continue;  // no slots needed
      off += 1 + static_cast<std::uint32_t>(
                     hierarchy_.downstream(PeerId(p)).size());
    }
    parent_offset_[n] = off;
    parents_.assign(off, obs::kNoLineage);
  }

  void on_start(net::PhaseContext& ctx) override {
    const PeerId p = ctx.self();
    if (!hierarchy_.is_member(p)) return;
    acc_[p] = local_(p);
    pending_[p] =
        static_cast<std::uint32_t>(hierarchy_.downstream(p).size());
    init_[p] = true;
    push_parent(p, ctx.cause());
    maybe_forward(ctx);
  }

  [[nodiscard]] bool done() const override {
    return complete_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool complete() const { return done(); }

  [[nodiscard]] const Pairs& result() const {
    require(complete(), "convergecast not complete");
    return acc_[hierarchy_.root()];
  }

  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return sent_bytes_[p];
  }

 protected:
  NF_SHARD_CONTEXT NF_STEADY_NOALLOC void on_flat(
      net::PhaseContext& ctx, std::span<const std::uint8_t> bytes,
      PeerId /*from*/) override {
    const PeerId p = ctx.self();
    ensure(init_[p] != 0, "convergecast message before initialization");
    ensure(pending_[p] > 0, "unexpected convergecast message");
    if (obs_ != nullptr) {
      obs_merges_->add(1);
      obs_->tracer.record(obs::EventKind::kMerge, "convergecast.merge",
                          p.value(), sent_bytes_[p]);
    }
    acc_[p].merge_add(net::decode_pairs(bytes));
    --pending_[p];
    push_parent(p, ctx.cause());
    maybe_forward(ctx);
  }

 private:
  void push_parent(PeerId p, obs::LineageId id) {
    const std::uint32_t slot = parent_offset_[p.value()] +
                               parent_count_[p]++;
    ensure(slot < parent_offset_[p.value() + 1], "parent slots exhausted");
    parents_[slot] = id;
  }

  void maybe_forward(net::PhaseContext& ctx) {
    const PeerId p = ctx.self();
    if (pending_[p] != 0 || sent_[p] != 0) return;
    if (p == hierarchy_.root()) {
      complete_.store(true, std::memory_order_relaxed);
      if (on_complete_) on_complete_(ctx, acc_[p]);
      return;
    }
    sent_[p] = true;
    net::PayloadWriter w = ctx.flat_payload();
    net::encode_pairs_to(w, acc_[p]);
    const net::PayloadRef ref = w.finish();
    const std::uint64_t bytes =
        wire_bytes_ ? wire_bytes_(acc_[p]) : ref.length;
    sent_bytes_[p] = bytes;
    if (obs_ != nullptr) obs_msg_bytes_->observe(bytes);
    const std::span<const obs::LineageId> parents(
        parents_.data() + parent_offset_[p.value()], parent_count_[p]);
    ctx.send_flat(hierarchy_.upstream(p), category_, bytes, ref, parents);
    acc_[p] = Pairs{};  // the merged map moved up the tree; free the slot
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  LocalFn local_;
  WireBytesFn wire_bytes_;
  obs::Context* obs_;
  obs::Counter* obs_merges_ = nullptr;
  obs::Histogram* obs_msg_bytes_ = nullptr;
  CompleteFn on_complete_;

  PeerArena<Pairs> acc_;
  PeerArena<std::uint32_t> pending_;
  PeerArena<bool> init_;
  PeerArena<bool> sent_;
  PeerArena<std::uint64_t> sent_bytes_;
  PeerArena<std::uint32_t> parent_count_;
  std::vector<std::uint32_t> parent_offset_;
  std::vector<obs::LineageId> parents_;
  std::atomic<bool> complete_{false};
};

/// Top-down dissemination of one pre-encoded payload (paper Algorithm 2,
/// line 1). The root installs encoded bytes once; every forward is a span
/// copy into the shard slab — the payload object is never reconstructed in
/// flight. Receivers get the raw span and decode as they see fit.
class FlatMulticastPhase final : public net::FlatPhase {
 public:
  /// Runs at every member (including the root) exactly once, when the
  /// payload reaches that peer.
  using ReceiveFn =
      std::function<void(net::PhaseContext&, std::span<const std::uint8_t>)>;

  FlatMulticastPhase(const Hierarchy& hierarchy, net::TrafficCategory category,
                     ReceiveFn on_receive, obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        on_receive_(std::move(on_receive)),
        obs_(obs) {
    if (obs != nullptr) {
      obs_forwards_ = &obs->registry.counter("multicast/forwards");
    }
  }

  /// Installs the encoded payload (copied) and its modelled wire size. Must
  /// happen before the phase opens at the root — either up front, or from
  /// an earlier phase's callback (the root's shard) right before
  /// open_phase().
  void set_payload(std::span<const std::uint8_t> encoded,
                   std::uint64_t wire_bytes) {
    payload_.assign(encoded.begin(), encoded.end());
    wire_bytes_ = wire_bytes;
    has_payload_ = true;
  }

  void on_run_start(const net::Overlay& overlay) override {
    received_.assign(overlay.num_peers(), false);
    num_received_.store(0, std::memory_order_relaxed);
  }

  void on_start(net::PhaseContext& ctx) override {
    if (ctx.self() != hierarchy_.root()) return;
    ensure(has_payload_, "multicast opened at root without a payload");
    deliver(ctx, payload_);
  }

  [[nodiscard]] bool done() const override {
    return num_received() >= hierarchy_.num_members();
  }
  [[nodiscard]] bool complete() const { return done(); }

  [[nodiscard]] std::uint32_t num_received() const {
    return num_received_.load(std::memory_order_relaxed);
  }

 protected:
  NF_SHARD_CONTEXT NF_STEADY_NOALLOC void on_flat(
      net::PhaseContext& ctx, std::span<const std::uint8_t> bytes,
      PeerId /*from*/) override {
    ensure(received_[ctx.self()] == 0, "duplicate multicast delivery");
    deliver(ctx, bytes);
  }

 private:
  void deliver(net::PhaseContext& ctx, std::span<const std::uint8_t> bytes) {
    const PeerId p = ctx.self();
    received_[p] = true;
    num_received_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(ctx, bytes);
    const auto& downstream = hierarchy_.downstream(p);
    if (downstream.empty()) return;
    if (obs_ != nullptr) {
      obs_forwards_->add(downstream.size());
      obs_->tracer.record(obs::EventKind::kFanout, "multicast.fanout",
                          p.value(), downstream.size());
    }
    // One span copy into the shard slab serves every child: the engine
    // re-copies per destination slot at the barrier anyway.
    net::PayloadWriter w = ctx.flat_payload();
    w.put_bytes(bytes);
    const net::PayloadRef ref = w.finish();
    const obs::LineageId parent = ctx.cause();
    for (PeerId child : downstream) {
      ctx.send_flat(child, category_, wire_bytes_, ref,
                    std::span<const obs::LineageId>(&parent, 1));
    }
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  ReceiveFn on_receive_;
  obs::Context* obs_;
  obs::Counter* obs_forwards_ = nullptr;
  std::vector<std::uint8_t> payload_;
  std::uint64_t wire_bytes_ = 0;
  bool has_payload_ = false;
  PeerArena<bool> received_;
  std::atomic<std::uint32_t> num_received_{0};
};

/// Standalone run-to-completion wrapper: one flat phase, one anonymous
/// session, opened at every member on the first tick — the drop-in flat
/// replacement for Convergecast<std::vector<Value>>.
class FlatAggregateConvergecast final : public net::Protocol {
 public:
  using LocalFn = FlatAggregateConvergecastPhase::LocalFn;

  FlatAggregateConvergecast(const Hierarchy& hierarchy,
                            net::TrafficCategory category, std::uint32_t width,
                            LocalFn local, std::uint64_t flat_bytes,
                            obs::Context* obs = nullptr)
      : phase_(hierarchy, category, width, std::move(local), flat_bytes, obs),
        mux_(obs) {
    const net::SessionId sid = mux_.add_session();
    net::PhaseOptions opts;
    opts.start = net::PhaseStart::kAllPeers;
    opts.open_on_message = false;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const net::Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(net::Context& ctx) override { mux_.on_round(ctx); }
  void on_message(net::Context& ctx, net::Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] bool complete() const { return phase_.complete(); }
  [[nodiscard]] std::span<const std::uint64_t> result() const {
    return phase_.result();
  }
  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return phase_.sent_bytes(p);
  }

 private:
  FlatAggregateConvergecastPhase phase_;
  net::SessionMux mux_;
};

/// Standalone flat pairs convergecast (candidate aggregation, naive sums).
class FlatPairsConvergecast final : public net::Protocol {
 public:
  using Pairs = FlatPairsConvergecastPhase::Pairs;
  using LocalFn = FlatPairsConvergecastPhase::LocalFn;
  using WireBytesFn = FlatPairsConvergecastPhase::WireBytesFn;

  FlatPairsConvergecast(const Hierarchy& hierarchy,
                        net::TrafficCategory category, LocalFn local,
                        WireBytesFn wire_bytes, obs::Context* obs = nullptr)
      : phase_(hierarchy, category, std::move(local), std::move(wire_bytes),
               obs),
        mux_(obs) {
    const net::SessionId sid = mux_.add_session();
    net::PhaseOptions opts;
    opts.start = net::PhaseStart::kAllPeers;
    opts.open_on_message = false;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const net::Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(net::Context& ctx) override { mux_.on_round(ctx); }
  void on_message(net::Context& ctx, net::Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] bool complete() const { return phase_.complete(); }
  [[nodiscard]] const Pairs& result() const { return phase_.result(); }
  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return phase_.sent_bytes(p);
  }

 private:
  FlatPairsConvergecastPhase phase_;
  net::SessionMux mux_;
};

/// Standalone flat multicast with the classic callback shape.
class FlatMulticast final : public net::Protocol {
 public:
  /// `on_receive` runs at every member (including the root) exactly once.
  using ReceiveFn =
      std::function<void(PeerId, std::span<const std::uint8_t>)>;

  FlatMulticast(const Hierarchy& hierarchy, net::TrafficCategory category,
                std::span<const std::uint8_t> encoded,
                std::uint64_t wire_bytes, ReceiveFn on_receive,
                obs::Context* obs = nullptr)
      : phase_(
            hierarchy, category,
            [fn = std::move(on_receive)](net::PhaseContext& ctx,
                                         std::span<const std::uint8_t> b) {
              fn(ctx.self(), b);
            },
            obs),
        mux_(obs) {
    phase_.set_payload(encoded, wire_bytes);
    const net::SessionId sid = mux_.add_session();
    net::PhaseOptions opts;
    opts.start = net::PhaseStart::kAllPeers;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const net::Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(net::Context& ctx) override { mux_.on_round(ctx); }
  void on_message(net::Context& ctx, net::Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] bool complete() const { return phase_.complete(); }
  [[nodiscard]] std::uint32_t num_received() const {
    return phase_.num_received();
  }

 private:
  FlatMulticastPhase phase_;
  net::SessionMux mux_;
};

}  // namespace nf::agg
