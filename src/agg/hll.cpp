#include "agg/hll.h"

#include <bit>
#include <cmath>

#include "common/error.h"
#include "common/hashing.h"

namespace nf::agg {

namespace {
// Fixed salt so every peer sketches identically without coordination.
constexpr std::uint64_t kHllSeed = 0x484C4C5345454431ull;
}  // namespace

HyperLogLog::HyperLogLog(std::uint32_t precision) : precision_(precision) {
  require(precision >= 4 && precision <= 18, "HLL precision must be in 4..18");
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::insert(ItemId item) {
  const std::uint64_t h = hash64(item.value(), kHllSeed);
  const std::uint64_t index = h >> (64 - precision_);
  const std::uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1-bit in the remaining bits, 1-based;
  // all-zero rest maps to the maximum rank.
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? (64 - precision_ + 1)
                : static_cast<std::uint32_t>(std::countl_zero(rest)) + 1);
  auto& reg = registers_[index];
  if (rank > reg) reg = rank;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  require(precision_ == other.precision_, "HLL precision mismatch");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

double HyperLogLog::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double alpha = 0.7213 / (1.0 + 1.079 / m);
  if (registers_.size() == 16) alpha = 0.673;
  else if (registers_.size() == 32) alpha = 0.697;
  else if (registers_.size() == 64) alpha = 0.709;

  double inv_sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Linear counting for the small range.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

}  // namespace nf::agg
