// Generic bottom-up aggregate computation over a hierarchy (paper §III-A.2).
//
// Leaves send their local contribution to their upstream neighbor; an
// internal peer merges its own contribution with everything received from
// downstream and forwards one merged message upward; the root ends up with
// the global aggregate. One message per non-root member, completing in
// `height` rounds — the "one or two rounds of communications" property the
// paper credits hierarchical aggregation with.
//
// The aggregate type `T` must be provided with:
//   local(peer)  -> T        the peer's own contribution
//   merge(T&, T&&)           combine a child's aggregate into the parent's
//   wire_bytes(const T&)     modelled serialized size of one message
//
// Used with T = std::vector<Value> for item-group aggregates (phase 1),
// T = ValueMap<ItemId> for candidate aggregation (phase 2), and scalar
// pairs for the v / N bootstrap aggregates.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/engine.h"
#include "obs/context.h"

namespace nf::agg {

/// Shard-safe: callbacks for peer p touch only state_[p]; `complete_` has a
/// single writer (the root's shard) and is read at the round barrier.
template <typename T>
class Convergecast final : public net::Protocol {
 public:
  using LocalFn = std::function<T(PeerId)>;
  using MergeFn = std::function<void(T&, T&&)>;
  using WireBytesFn = std::function<std::uint64_t(const T&)>;

  Convergecast(const Hierarchy& hierarchy, net::TrafficCategory category,
               LocalFn local, MergeFn merge, WireBytesFn wire_bytes,
               obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        local_(std::move(local)),
        merge_(std::move(merge)),
        wire_bytes_(std::move(wire_bytes)),
        obs_(obs),
        state_(hierarchy.num_peers()) {}

  void on_round(net::Context& ctx) override {
    const PeerId p = ctx.self();
    if (!hierarchy_.is_member(p)) return;
    State& st = state_[p.value()];
    if (!st.acc.has_value()) {
      st.acc.emplace(local_(p));
      st.pending = static_cast<std::uint32_t>(
          hierarchy_.downstream(p).size());
      maybe_forward(ctx, st);
    }
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    State& st = state_[ctx.self().value()];
    ensure(st.acc.has_value(), "convergecast message before initialization");
    ensure(st.pending > 0, "unexpected convergecast message");
    T* payload = std::any_cast<T>(&env.payload);
    ensure(payload != nullptr, "convergecast payload type mismatch");
    if (obs_ != nullptr) {
      obs_->registry.counter("convergecast/merges").add(1);
      obs_->tracer.record(obs::EventKind::kMerge, "convergecast.merge",
                          ctx.self().value(), env.bytes);
    }
    merge_(*st.acc, std::move(*payload));
    --st.pending;
    maybe_forward(ctx, st);
  }

  [[nodiscard]] bool active() const override { return !complete_; }

  [[nodiscard]] bool complete() const { return complete_; }

  /// The global aggregate; valid once complete().
  [[nodiscard]] const T& result() const {
    require(complete_, "convergecast not complete");
    return *state_[hierarchy_.root().value()].acc;
  }

  /// Bytes this peer propagated upward (0 for the root). Valid after run.
  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return state_[p.value()].sent_bytes;
  }

 private:
  struct State {
    bool sent = false;
    std::uint32_t pending = 0;
    std::uint64_t sent_bytes = 0;
    std::optional<T> acc;
  };

  void maybe_forward(net::Context& ctx, State& st) {
    if (st.pending != 0 || st.sent) return;
    const PeerId p = ctx.self();
    if (p == hierarchy_.root()) {
      complete_ = true;
      return;
    }
    st.sent = true;
    st.sent_bytes = wire_bytes_(*st.acc);
    if (obs_ != nullptr) {
      obs_->registry.histogram("convergecast/msg_bytes")
          .observe(st.sent_bytes);
    }
    ctx.send(hierarchy_.upstream(p), category_, st.sent_bytes,
             std::any(std::move(*st.acc)));
    st.acc.reset();
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  LocalFn local_;
  MergeFn merge_;
  WireBytesFn wire_bytes_;
  obs::Context* obs_;
  PeerArena<State> state_;
  bool complete_ = false;
};

}  // namespace nf::agg
