// Generic bottom-up aggregate computation over a hierarchy (paper §III-A.2).
//
// Leaves send their local contribution to their upstream neighbor; an
// internal peer merges its own contribution with everything received from
// downstream and forwards one merged message upward; the root ends up with
// the global aggregate. One message per non-root member, completing in
// `height` rounds — the "one or two rounds of communications" property the
// paper credits hierarchical aggregation with.
//
// The aggregate type `T` must be provided with:
//   local(peer)  -> T        the peer's own contribution
//   merge(T&, T&&)           combine a child's aggregate into the parent's
//   wire_bytes(const T&)     modelled serialized size of one message
//
// Used with T = std::vector<Value> for item-group aggregates (phase 1),
// T = ValueMap<ItemId> for candidate aggregation (phase 2), and scalar
// pairs for the v / N bootstrap aggregates.
//
// ConvergecastPhase is the session-runtime component (net/session.h): it
// initializes a peer when its phase opens there — so a convergecast can
// start per peer, pipelined behind whatever triggers it — and reports
// done() once the root has merged every child. Convergecast is the classic
// standalone protocol, now a thin shim wrapping one phase in a
// single-session mux.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/session.h"
#include "obs/context.h"

namespace nf::agg {

/// Shard-safe: callbacks for peer p touch only state_[p]; `complete_` has a
/// single writer (the root's shard) and is read at the round barrier.
/// Messages are typed (net::TypedPhase<T>): a payload type error in caller
/// code fails at compile time.
template <typename T>
// Legacy object-payload path; flat counterpart: FlatAggregateConvergecast /
// FlatPairsConvergecast (agg/flat_phases.h).
class ConvergecastPhase final : public net::TypedPhase<T> {  // nf-lint: nf-flat-payload-ok
 public:
  using LocalFn = std::function<T(PeerId)>;
  using MergeFn = std::function<void(T&, T&&)>;
  using WireBytesFn = std::function<std::uint64_t(const T&)>;
  /// Fires at the root, inside the run, the moment the global aggregate is
  /// complete — the hook a downstream phase transition chains from.
  using CompleteFn = std::function<void(net::PhaseContext&, const T&)>;

  ConvergecastPhase(const Hierarchy& hierarchy, net::TrafficCategory category,
                    LocalFn local, MergeFn merge, WireBytesFn wire_bytes,
                    obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        local_(std::move(local)),
        merge_(std::move(merge)),
        wire_bytes_(std::move(wire_bytes)),
        obs_(obs),
        state_(hierarchy.num_peers()) {}

  void set_on_complete(CompleteFn on_complete) {
    on_complete_ = std::move(on_complete);
  }

  void on_start(net::PhaseContext& ctx) override {
    const PeerId p = ctx.self();
    if (!hierarchy_.is_member(p)) return;
    State& st = state_[p.value()];
    st.acc.emplace(local_(p));
    st.pending =
        static_cast<std::uint32_t>(hierarchy_.downstream(p).size());
    // Whatever opened this phase here (a dissemination arrival, a replayed
    // envelope) is a causal parent of the merged message sent upward.
    st.parents.push_back(ctx.cause());
    maybe_forward(ctx, st);
  }

  // Atomic (single writer: the root's shard; many readers: the mux's
  // per-peer round gating runs on every shard). Relaxed is enough — a stale
  // false only costs one no-op tick, and the round barrier publishes the
  // flag before anyone acts on downstream state.
  [[nodiscard]] bool done() const override {
    return complete_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool complete() const { return done(); }

  /// The global aggregate; valid once complete().
  [[nodiscard]] const T& result() const {
    require(complete(), "convergecast not complete");
    return *state_[hierarchy_.root().value()].acc;
  }

  /// Bytes this peer propagated upward (0 for the root). Valid after run.
  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return state_[p.value()].sent_bytes;
  }

 protected:
  void on_payload(net::PhaseContext& ctx, T&& child,
                  PeerId /*from*/) override {
    State& st = state_[ctx.self().value()];
    ensure(st.acc.has_value(), "convergecast message before initialization");
    ensure(st.pending > 0, "unexpected convergecast message");
    if (obs_ != nullptr) {
      obs_->registry.counter("convergecast/merges").add(1);
      obs_->tracer.record(obs::EventKind::kMerge, "convergecast.merge",
                          ctx.self().value(), st.sent_bytes);
    }
    merge_(*st.acc, std::move(child));
    --st.pending;
    st.parents.push_back(ctx.cause());
    maybe_forward(ctx, st);
  }

 private:
  struct State {
    bool sent = false;
    std::uint32_t pending = 0;
    std::uint64_t sent_bytes = 0;
    std::optional<T> acc;
    /// Causal parents of the merged upward message: the arrival that opened
    /// the phase plus every child aggregate merged in.
    std::vector<obs::LineageId> parents;
  };

  void maybe_forward(net::PhaseContext& ctx, State& st) {
    if (st.pending != 0 || st.sent) return;
    const PeerId p = ctx.self();
    if (p == hierarchy_.root()) {
      complete_.store(true, std::memory_order_relaxed);
      if (on_complete_) on_complete_(ctx, *st.acc);
      return;
    }
    st.sent = true;
    st.sent_bytes = wire_bytes_(*st.acc);
    if (obs_ != nullptr) {
      obs_->registry.histogram("convergecast/msg_bytes")
          .observe(st.sent_bytes);
    }
    // The merged message descends from every contribution it carries.
    this->send(ctx, hierarchy_.upstream(p), category_, st.sent_bytes,
               std::move(*st.acc),
               std::span<const obs::LineageId>(st.parents));
    st.acc.reset();
    st.parents.clear();
    st.parents.shrink_to_fit();
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  LocalFn local_;
  MergeFn merge_;
  WireBytesFn wire_bytes_;
  obs::Context* obs_;
  CompleteFn on_complete_;
  PeerArena<State> state_;
  std::atomic<bool> complete_{false};
};

/// Standalone run-to-completion convergecast: one phase, one anonymous
/// session, opened at every member on the first tick. Existing callers
/// (bootstrap aggregates, tests) keep compiling unchanged.
template <typename T>
class Convergecast final : public net::Protocol {
 public:
  using LocalFn = typename ConvergecastPhase<T>::LocalFn;
  using MergeFn = typename ConvergecastPhase<T>::MergeFn;
  using WireBytesFn = typename ConvergecastPhase<T>::WireBytesFn;

  Convergecast(const Hierarchy& hierarchy, net::TrafficCategory category,
               LocalFn local, MergeFn merge, WireBytesFn wire_bytes,
               obs::Context* obs = nullptr)
      : phase_(hierarchy, category, std::move(local), std::move(merge),
               std::move(wire_bytes), obs),
        mux_(obs) {
    const net::SessionId sid = mux_.add_session();
    net::PhaseOptions opts;
    opts.start = net::PhaseStart::kAllPeers;
    opts.open_on_message = false;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const net::Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(net::Context& ctx) override { mux_.on_round(ctx); }
  void on_message(net::Context& ctx, net::Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] bool complete() const { return phase_.complete(); }
  [[nodiscard]] const T& result() const { return phase_.result(); }
  [[nodiscard]] std::uint64_t sent_bytes(PeerId p) const {
    return phase_.sent_bytes(p);
  }

 private:
  ConvergecastPhase<T> phase_;
  net::SessionMux mux_;
};

}  // namespace nf::agg
