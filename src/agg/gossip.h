// Push-sum gossip aggregation (Kempe, Dobra & Gehring style).
//
// The paper (§III-A) contrasts hierarchical aggregation with gossip
// aggregation: gossip needs O(log N) rounds to (almost) converge and yields
// approximate aggregates, but has no tree to repair. The paper picks the
// hierarchy and leaves "a well-designed gossip aggregation" as future work;
// we implement push-sum so the trade-off can actually be measured
// (bench/ablation_gossip) and so the gossip-based netFilter extension has a
// substrate.
//
// Each peer holds a value vector x_p and a weight w_p (initially 1 at every
// peer). Every round it splits (x, w) in half, keeps one half and sends the
// other to a uniformly random alive neighbor. x_p / w_p converges to the
// network-wide average of the initial vectors; multiplying by the peer
// count (aggregated the same way via an extra "count" coordinate seeded 1
// at the root) estimates the global sum.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/engine.h"
#include "obs/context.h"

namespace nf::agg {

/// Shard-safe: each peer's (x, count, w) triple and its private RNG stream
/// live in dense arenas and are touched only by that peer's callbacks; the
/// round counter advances in on_round_begin on the engine thread.
class PushSumGossip final : public net::Protocol {
 public:
  struct Config {
    /// Bytes per transmitted vector coordinate (the paper's sa).
    std::uint32_t bytes_per_coordinate = 4;
    /// Extra bytes for the transmitted weight.
    std::uint32_t weight_bytes = 4;
    /// Stop after this many rounds.
    std::uint32_t rounds = 50;
    std::uint64_t seed = 1;
    /// Optional observability sink (not owned; may be null).
    obs::Context* obs = nullptr;
  };

  /// `initial[p]` is peer p's local vector. All vectors must have the same
  /// dimension. The hidden extra coordinate (1 at peer 0, 0 elsewhere)
  /// estimates 1/N so `estimate_sum` needs no out-of-band peer count.
  PushSumGossip(std::vector<std::vector<double>> initial, Config config);

  void on_round_begin(std::uint64_t round) override;
  void on_round(net::Context& ctx) override;
  void on_message(net::Context& ctx, net::Envelope&& env) override;
  [[nodiscard]] bool active() const override {
    return rounds_done_ < config_.rounds;
  }

  /// Peer p's current estimate of the network-wide SUM of coordinate `i`.
  [[nodiscard]] double estimate_sum(PeerId p, std::size_t i) const;

  /// Max over peers of the relative disagreement of coordinate i estimates
  /// (convergence diagnostic).
  [[nodiscard]] double relative_spread(std::size_t i) const;

  /// Sum of coordinate i over all peers' resident state. Once no shares are
  /// in flight this equals the initial global sum exactly (mass
  /// conservation — the invariant push-sum correctness rests on).
  [[nodiscard]] double total_mass(std::size_t i) const;

  [[nodiscard]] std::uint32_t rounds_done() const { return rounds_done_; }
  [[nodiscard]] std::size_t dimension() const { return dimension_; }

 private:
  struct Share {
    std::vector<double> x;
    double count;
    double w;
  };

  Config config_;
  std::size_t dimension_;
  PeerArena<std::vector<double>> x_;  // per-peer value vector
  PeerArena<double> count_;           // per-peer "1 at peer 0" coordinate
  PeerArena<double> w_;               // per-peer weight
  PeerArena<Rng> rng_;                // per-peer independent randomness
  // Lineage ids of shares merged since this peer's last send; attached as
  // causal parents of the next outgoing share.
  PeerArena<std::vector<obs::LineageId>> pending_parents_;
  std::uint32_t rounds_done_{0};
  std::uint32_t num_peers_{0};
};

}  // namespace nf::agg
