// Source-routed request/reply along the hierarchy.
//
// §III-A.1: "requests from different peers are first forwarded to the root
// node ... [which] forwards [the result] to the corresponding peer". A
// request travels up the parent chain recording its route; the root's
// handler produces a reply that retraces the recorded route back to the
// requester — no peer needs global knowledge, only its own upstream link
// and the route carried in the message.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/engine.h"

namespace nf::agg {

template <typename Request, typename Reply>
class TreeRequestReply final : public net::Protocol {
 public:
  /// `serve` runs once at the root and produces the reply.
  /// `request_bytes`/`reply_bytes` are charged per hop.
  TreeRequestReply(const Hierarchy& hierarchy, PeerId requester,
                   Request request, std::uint64_t request_bytes,
                   std::function<Reply(PeerId, const Request&)> serve,
                   std::function<std::uint64_t(const Reply&)> reply_bytes,
                   net::TrafficCategory category =
                       net::TrafficCategory::kControl)
      : hierarchy_(hierarchy),
        requester_(requester),
        request_(std::move(request)),
        request_bytes_(request_bytes),
        serve_(std::move(serve)),
        reply_bytes_(std::move(reply_bytes)),
        category_(category) {
    require(hierarchy.is_member(requester), "requester must be a member");
  }

  void on_round(net::Context& ctx) override {
    if (started_ || ctx.self() != requester_) return;
    started_ = true;
    if (requester_ == hierarchy_.root()) {
      // Degenerate case: the requester is the root; serve locally.
      reply_ = serve_(requester_, request_);
      return;
    }
    Up up{{requester_}, request_};
    ctx.send(hierarchy_.upstream(requester_), category_, request_bytes_,
             std::any(std::move(up)));
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    const PeerId self = ctx.self();
    if (auto* up = std::any_cast<Up>(&env.payload)) {
      if (self == hierarchy_.root()) {
        Down down{std::move(up->route), serve_(self, up->request)};
        const PeerId next = down.route.back();
        down.route.pop_back();
        // The last route entry before popping is the root's child on the
        // path... route = [requester, ..., root-child]; send to the back.
        ctx.send(next, category_, reply_bytes_(down.reply),
                 std::any(std::move(down)));
        return;
      }
      up->route.push_back(self);
      ctx.send(hierarchy_.upstream(self), category_, request_bytes_,
               std::any(std::move(*up)));
      return;
    }
    if (auto* down = std::any_cast<Down>(&env.payload)) {
      if (down->route.empty()) {
        ensure(self == requester_, "reply misrouted");
        reply_ = std::move(down->reply);
        return;
      }
      const PeerId next = down->route.back();
      down->route.pop_back();
      ctx.send(next, category_, reply_bytes_(down->reply),
               std::any(std::move(*down)));
      return;
    }
    ensure(false, "unknown request/reply message");
  }

  [[nodiscard]] bool active() const override {
    return !reply_.has_value();
  }

  [[nodiscard]] bool complete() const { return reply_.has_value(); }

  /// The reply as delivered at the requester.
  [[nodiscard]] const Reply& reply() const {
    require(reply_.has_value(), "no reply yet");
    return *reply_;
  }

 private:
  struct Up {
    std::vector<PeerId> route;  // [requester, hop, hop, ...]
    Request request;
  };
  struct Down {
    std::vector<PeerId> route;  // remaining hops, requester first
    Reply reply;
  };

  const Hierarchy& hierarchy_;
  PeerId requester_;
  Request request_;
  std::uint64_t request_bytes_;
  std::function<Reply(PeerId, const Request&)> serve_;
  std::function<std::uint64_t(const Reply&)> reply_bytes_;
  net::TrafficCategory category_;
  bool started_ = false;
  std::optional<Reply> reply_;
};

}  // namespace nf::agg
