// Bootstrap aggregates: v and N (paper §IV).
//
// "We assume that we have the values of v and N through simple aggregate
// computation. To obtain v, each peer contributes a single value ... to
// obtain N, each peer contributes the single value of 1." Both ride one
// convergecast — two aggregate fields per non-root member.
#pragma once

#include <cstdint>
#include <utility>

#include "agg/convergecast.h"
#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "common/wire.h"
#include "net/engine.h"

namespace nf::agg {

struct BootstrapTotals {
  Value v_total = 0;           ///< Σ over members of local totals
  std::uint64_t num_members = 0;  ///< the paper's N
  std::uint64_t rounds = 0;
};

/// Runs the v/N convergecast over `hierarchy`, charging 2·sa bytes per
/// non-root member under `category`.
[[nodiscard]] inline BootstrapTotals bootstrap_totals(
    const ItemSource& items, const Hierarchy& hierarchy,
    net::Overlay& overlay, net::TrafficMeter& meter, const WireSizes& wire,
    net::TrafficCategory category = net::TrafficCategory::kSampling) {
  using Pair = std::pair<Value, std::uint64_t>;
  Convergecast<Pair> cast(
      hierarchy, category,
      /*local=*/
      [&](PeerId p) {
        return Pair{items.local_items(p).total(), 1};
      },
      /*merge=*/
      [](Pair& a, Pair&& b) {
        a.first += b.first;
        a.second += b.second;
      },
      /*wire_bytes=*/
      [&wire](const Pair&) { return std::uint64_t{2} * wire.aggregate_bytes; });
  net::Engine engine(overlay, meter);
  BootstrapTotals out;
  out.rounds = engine.run(cast, 100000);
  ensure(cast.complete(), "bootstrap aggregate did not complete");
  out.v_total = cast.result().first;
  out.num_members = cast.result().second;
  return out;
}

}  // namespace nf::agg
