// Random-branch sampling for practical parameter estimation (paper §IV-E).
//
// The optimal filter size g_opt (Formula 3) and filter count f_opt
// (Formula 6) need v̄ (average global value), v̄_light (average global value
// of light items), n (distinct items) and r (heavy items). The paper
// estimates them by sampling a few root-to-leaf branches of the hierarchy:
// every peer on a sampled branch picks some random local items, the sampled
// peers' aggregates for those items are collected, and each is scaled by
// v / Σᵢ ṽᵢ to estimate its global value (the paper's v̂ᵢ formula); v̄ and
// v̄_light follow from Formulae 8 and 7.
//
// The paper defers its n and r estimators to the tech report; we instantiate
// them as documented in DESIGN.md:
//   n̂ — HyperLogLog sketches merged up the hierarchy (mergeable, one
//       fixed-size message per peer);
//   r̂ — Horvitz–Thompson over the sampled items: each sampled item with
//       estimated global value ≥ t contributes 1/π̂ₓ, where π̂ₓ is its
//       estimated probability of entering the sample (more popular items
//       sit on more peers and are sampled more often).
#pragma once

#include <cstdint>

#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "net/metrics.h"

namespace nf::agg {

struct SamplingConfig {
  /// Number of root-to-leaf branches to sample.
  std::uint32_t num_branches = 5;
  /// Random local items each sampled peer contributes.
  std::uint32_t items_per_peer = 50;
  /// HLL precision for the n estimate (2^p one-byte registers per message).
  std::uint32_t hll_precision = 10;
  /// If false, n̂ is left at 0 and no HLL traffic is charged (caller knows n).
  bool estimate_n = true;
  /// Wire sizes for the charged sampling traffic.
  std::uint32_t aggregate_bytes = 4;
  std::uint32_t item_id_bytes = 4;
  std::uint64_t seed = 7;
};

struct SampleEstimates {
  double v_bar = 0.0;        ///< estimate of v̄ (Formula 8)
  double v_bar_light = 0.0;  ///< estimate of v̄_light (Formula 7)
  double n_hat = 0.0;        ///< estimate of n (0 if estimate_n == false)
  double r_hat = 0.0;        ///< estimate of r
  std::uint32_t num_sampled_peers = 0;
  std::uint32_t num_sampled_items = 0;  ///< x in the paper
};

/// Runs the sampling procedure. Traffic is charged to `meter` (category
/// kSampling) if non-null: each sampled peer propagates one <id, value>
/// pair per sampled item along its branch; if `estimate_n`, every member
/// additionally propagates one HLL sketch up the hierarchy.
[[nodiscard]] SampleEstimates sample_estimates(const Hierarchy& hierarchy,
                                               const ItemSource& items,
                                               Value v_total, Value threshold,
                                               const SamplingConfig& config,
                                               net::TrafficMeter* meter);

}  // namespace nf::agg
