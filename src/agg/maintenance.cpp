#include "agg/maintenance.h"

#include <algorithm>

#include "common/error.h"

namespace nf::agg {

HierarchyMaintenance::HierarchyMaintenance(const Hierarchy& initial,
                                           Config config)
    : root_(initial.root()),
      config_(config),
      state_(initial.num_peers()) {
  require(config_.stale_rounds > config_.timeout_rounds,
          "stale_rounds must exceed timeout_rounds");
  for (std::uint32_t p = 0; p < initial.num_peers(); ++p) {
    const PeerId id(p);
    if (!initial.is_member(id)) continue;
    PeerState& st = state_[p];
    st.depth = initial.depth(id);
    if (id != initial.root()) st.upstream = initial.upstream(id);
    st.downstream = initial.downstream(id);
  }
}

void HierarchyMaintenance::on_round(net::Context& ctx) {
  const PeerId self = ctx.self();
  PeerState& st = state_[self.value()];
  const auto& neighbors = ctx.neighbors();
  if (st.last_heard.size() != neighbors.size()) {
    st.last_heard.assign(neighbors.size(), -1);
  }
  const auto now = static_cast<std::int64_t>(ctx.round());

  // Grace period: treat "never heard" as "heard at first tick" so peers are
  // not declared dead before they had a chance to speak.
  if (!st.ever_ticked) {
    st.ever_ticked = true;
    st.last_heard.assign(neighbors.size(), now);
    st.seq_advanced_at = now;
  }

  if (self == root_) {
    // The root mints fresh sequence numbers; its depth is always 0.
    st.depth = 0;
    st.seq = static_cast<std::uint64_t>(now) + 1;
    st.seq_advanced_at = now;
  } else {
    // Upstream liveness check.
    if (st.upstream.has_value()) {
      const auto it =
          std::find(neighbors.begin(), neighbors.end(), *st.upstream);
      ensure(it != neighbors.end(), "upstream is not an overlay neighbor");
      const auto idx =
          static_cast<std::size_t>(std::distance(neighbors.begin(), it));
      if (now - st.last_heard[idx] >
          static_cast<std::int64_t>(config_.timeout_rounds)) {
        become_orphan(ctx, st);
      }
    }
    // Count-to-infinity breaker: if our root sequence stopped advancing, our
    // upstream path no longer reaches the root (we are in a detached cycle
    // or behind one) — drop out and wait for fresh information.
    if (st.depth != kInfiniteDepth &&
        now - st.seq_advanced_at >
            static_cast<std::int64_t>(config_.stale_rounds)) {
      become_orphan(ctx, st);
    }
  }

  // Periodic heartbeat with the SEQ and DEPTH counters to every overlay
  // neighbor (a real peer does not know which neighbors are alive).
  for (PeerId q : neighbors) {
    ctx.send(q, net::TrafficCategory::kControl, config_.heartbeat_bytes,
             std::any(Heartbeat{st.seq, st.depth}));
  }
}

void HierarchyMaintenance::on_message(net::Context& ctx,
                                      net::Envelope&& env) {
  const PeerId self = ctx.self();
  PeerState& st = state_[self.value()];

  if (const auto* hb = std::any_cast<Heartbeat>(&env.payload)) {
    const auto& neighbors = ctx.neighbors();
    if (st.last_heard.size() != neighbors.size()) {
      st.last_heard.assign(neighbors.size(), -1);
    }
    const auto it = std::find(neighbors.begin(), neighbors.end(), env.from);
    ensure(it != neighbors.end(), "heartbeat from non-neighbor");
    const auto idx =
        static_cast<std::size_t>(std::distance(neighbors.begin(), it));
    const auto now = static_cast<std::int64_t>(ctx.round());
    st.last_heard[idx] = now;

    if (self == root_) return;

    if (st.upstream.has_value() && env.from == *st.upstream) {
      if (hb->depth == kInfiniteDepth) {
        // Upstream fell out of the hierarchy: so do we (recursively).
        become_orphan(ctx, st);
      } else if (hb->seq > st.seq) {
        // Fresh root-originated information: refresh depth and sequence.
        st.seq = hb->seq;
        st.seq_advanced_at = now;
        st.depth = hb->depth + 1;
      }
    } else if (st.depth == kInfiniteDepth &&
               hb->depth != kInfiniteDepth && hb->seq > st.seq) {
      // Orphaned (or newly joined) peer re-enters at depth d+1 — but only
      // on information fresher than anything it has already seen, so a
      // detached cycle's frozen sequence can never recruit it back.
      adopt(ctx, st, env.from, *hb);
    }
    return;
  }

  if (std::any_cast<Orphan>(&env.payload) != nullptr) {
    // Only meaningful if it still comes from our upstream; stale orphan
    // notifications from a since-replaced parent are ignored.
    if (st.upstream.has_value() && env.from == *st.upstream) {
      become_orphan(ctx, st);
    }
    return;
  }

  if (std::any_cast<Attach>(&env.payload) != nullptr) {
    if (std::find(st.downstream.begin(), st.downstream.end(), env.from) ==
        st.downstream.end()) {
      st.downstream.push_back(env.from);
    }
    return;
  }

  if (std::any_cast<Detach>(&env.payload) != nullptr) {
    remove_downstream(st, env.from);
    return;
  }

  ensure(false, "unknown maintenance message");
}

void HierarchyMaintenance::become_orphan(net::Context& ctx, PeerState& st) {
  if (st.depth == kInfiniteDepth && !st.upstream.has_value()) return;
  st.depth = kInfiniteDepth;
  st.upstream.reset();
  // Recursively inform downstream neighbors (paper §III-A.3). They also see
  // the infinite depth in our heartbeats; the explicit message just makes
  // the wave one round faster per level.
  for (PeerId child : st.downstream) {
    ctx.send(child, net::TrafficCategory::kControl, config_.control_bytes,
             std::any(Orphan{}));
  }
}

void HierarchyMaintenance::adopt(net::Context& ctx, PeerState& st,
                                 PeerId parent, const Heartbeat& hb) {
  if (st.upstream.has_value() && *st.upstream != parent &&
      ctx.is_alive(*st.upstream)) {
    ctx.send(*st.upstream, net::TrafficCategory::kControl,
             config_.control_bytes, std::any(Detach{}));
  }
  // The new parent might be a current downstream neighbor (possible during
  // subtree reorganisation); sever that side first to avoid a 2-cycle.
  remove_downstream(st, parent);
  st.depth = hb.depth + 1;
  st.seq = hb.seq;
  st.seq_advanced_at = static_cast<std::int64_t>(ctx.round());
  if (!st.upstream.has_value() || *st.upstream != parent) {
    st.upstream = parent;
    ctx.send(parent, net::TrafficCategory::kControl, config_.control_bytes,
             std::any(Attach{}));
  }
}

void HierarchyMaintenance::remove_downstream(PeerState& st, PeerId child) {
  st.downstream.erase(
      std::remove(st.downstream.begin(), st.downstream.end(), child),
      st.downstream.end());
}

Hierarchy HierarchyMaintenance::snapshot(const net::Overlay& overlay) const {
  const std::uint32_t n = overlay.num_peers();
  ensure(n == state_.size(), "overlay size mismatch");

  // Derive membership from upstream pointers: a peer is a member iff it is
  // alive, has finite depth, and its parent chain reaches the root through
  // alive finite-depth peers. This filters out mid-repair islands/cycles.
  std::vector<std::int8_t> reaches(n, -1);  // -1 unknown, 0 no, 1 yes
  const auto reaches_root = [&](std::uint32_t start) {
    std::vector<std::uint32_t> path;
    std::uint32_t cur = start;
    while (true) {
      if (reaches[cur] != -1) break;
      if (!overlay.is_alive(PeerId(cur)) ||
          state_[cur].depth == kInfiniteDepth) {
        reaches[cur] = 0;
        break;
      }
      if (PeerId(cur) == root_) {
        reaches[cur] = 1;
        break;
      }
      if (!state_[cur].upstream.has_value()) {
        reaches[cur] = 0;
        break;
      }
      // Cycle guard: if we revisit a node on the current path, nobody on
      // the path reaches the root.
      if (std::find(path.begin(), path.end(), cur) != path.end()) {
        reaches[cur] = 0;
        break;
      }
      path.push_back(cur);
      cur = state_[cur].upstream->value();
    }
    const std::int8_t verdict = reaches[cur];
    for (std::uint32_t p : path) reaches[p] = verdict;
    return reaches[start] == 1;
  };

  std::vector<std::uint32_t> depth(n, kInfiniteDepth);
  std::vector<PeerId> upstream(n, PeerId(0));
  std::vector<std::vector<PeerId>> downstream(n);
  std::vector<PeerId> host(n);
  for (std::uint32_t p = 0; p < n; ++p) host[p] = PeerId(p);

  for (std::uint32_t p = 0; p < n; ++p) {
    if (!reaches_root(p)) continue;
    depth[p] = state_[p].depth;
    if (PeerId(p) == root_) {
      upstream[p] = root_;
    } else {
      upstream[p] = *state_[p].upstream;
      downstream[state_[p].upstream->value()].push_back(PeerId(p));
    }
  }

  // Normalize depths: repair can leave consistent trees whose stored depths
  // lag by a round; recompute from the tree structure itself.
  for (std::uint32_t p = 0; p < n; ++p) {
    if (depth[p] == kInfiniteDepth || PeerId(p) == root_) continue;
    std::uint32_t hops = 0;
    std::uint32_t cur = p;
    while (PeerId(cur) != root_) {
      cur = upstream[cur].value();
      ++hops;
    }
    depth[p] = hops;
  }
  depth[root_.value()] = 0;

  // Hosts for alive non-members: nearest member over the alive overlay.
  std::vector<bool> visited(n, false);
  std::vector<PeerId> nearest(n, PeerId(0));
  std::vector<PeerId> frontier;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (depth[p] != kInfiniteDepth) {
      visited[p] = true;
      nearest[p] = PeerId(p);
      frontier.push_back(PeerId(p));
    }
  }
  while (!frontier.empty()) {
    std::vector<PeerId> next;
    for (PeerId p : frontier) {
      for (PeerId q : overlay.neighbors(p)) {
        if (!overlay.is_alive(q) || visited[q.value()]) continue;
        visited[q.value()] = true;
        nearest[q.value()] = nearest[p.value()];
        next.push_back(q);
      }
    }
    frontier = std::move(next);
  }
  for (std::uint32_t p = 0; p < n; ++p) {
    if (depth[p] == kInfiniteDepth && overlay.is_alive(PeerId(p)) &&
        visited[p]) {
      host[p] = nearest[p];
    }
  }

  return Hierarchy(root_, std::move(depth), std::move(upstream),
                   std::move(downstream), std::move(host));
}

bool HierarchyMaintenance::stabilized(const net::Overlay& overlay) const {
  if (!overlay.is_alive(root_)) return false;
  const Hierarchy snap = snapshot(overlay);
  for (std::uint32_t p = 0; p < overlay.num_peers(); ++p) {
    if (overlay.is_alive(PeerId(p)) && !snap.is_member(PeerId(p))) {
      return false;
    }
  }
  // Depth consistency against the peers' own DEPTH counters.
  for (std::uint32_t p = 0; p < overlay.num_peers(); ++p) {
    if (!snap.is_member(PeerId(p))) continue;
    if (state_[p].depth != snap.depth(PeerId(p))) return false;
  }
  return true;
}

}  // namespace nf::agg
