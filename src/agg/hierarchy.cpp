#include "agg/hierarchy.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.h"

namespace nf::agg {

Hierarchy::Hierarchy(PeerId root, std::vector<std::uint32_t> depth,
                     std::vector<PeerId> upstream,
                     std::vector<std::vector<PeerId>> downstream,
                     std::vector<PeerId> host)
    : root_(root),
      depth_(std::move(depth)),
      upstream_(std::move(upstream)),
      downstream_(std::move(downstream)),
      host_(std::move(host)) {
  ensure(depth_.size() == upstream_.size() &&
             depth_.size() == downstream_.size() &&
             depth_.size() == host_.size(),
         "hierarchy vectors disagree on peer count");
  std::uint32_t max_depth = 0;
  for (std::uint32_t d : depth_) {
    if (d == kInfiniteDepth) continue;
    ++num_members_;
    max_depth = std::max(max_depth, d);
  }
  height_ = num_members_ > 0 ? max_depth + 1 : 0;
}

std::uint32_t Hierarchy::depth(PeerId p) const {
  require(is_member(p), "depth of non-member");
  return depth_[p.value()];
}

PeerId Hierarchy::upstream(PeerId p) const {
  require(is_member(p), "upstream of non-member");
  return upstream_[p.value()];
}

const std::vector<PeerId>& Hierarchy::downstream(PeerId p) const {
  require(is_member(p), "downstream of non-member");
  return downstream_[p.value()];
}

std::vector<PeerId> Hierarchy::members_deepest_first() const {
  std::vector<PeerId> members;
  members.reserve(num_members_);
  for (std::uint32_t p = 0; p < num_peers(); ++p) {
    if (is_member(PeerId(p))) members.push_back(PeerId(p));
  }
  std::stable_sort(members.begin(), members.end(),
                   [&](PeerId a, PeerId b) {
                     return depth_[a.value()] > depth_[b.value()];
                   });
  return members;
}

double Hierarchy::avg_fanout() const {
  std::uint64_t internal = 0;
  std::uint64_t fanout = 0;
  for (std::uint32_t p = 0; p < num_peers(); ++p) {
    const PeerId id(p);
    if (!is_member(id) || downstream_[p].empty()) continue;
    ++internal;
    fanout += downstream_[p].size();
  }
  return internal ? static_cast<double>(fanout) / static_cast<double>(internal)
                  : 0.0;
}

void Hierarchy::validate(const Overlay& overlay) const {
  ensure(num_peers() == overlay.num_peers(), "peer count mismatch");
  ensure(is_member(root_) && depth_[root_.value()] == 0, "bad root");
  ensure(upstream_[root_.value()] == root_, "root upstream must be itself");
  std::uint32_t reachable = 0;
  for (std::uint32_t p = 0; p < num_peers(); ++p) {
    const PeerId id(p);
    if (!is_member(id)) {
      // Alive non-members must be hosted by an alive member.
      if (overlay.is_alive(id)) {
        const PeerId h = host_[p];
        ensure(is_member(h) && overlay.is_alive(h),
               "alive non-member lacks alive member host");
      }
      continue;
    }
    ensure(overlay.is_alive(id), "dead member");
    ++reachable;
    if (id != root_) {
      const PeerId up = upstream_[p];
      ensure(is_member(up), "upstream is not a member");
      ensure(depth_[p] == depth_[up.value()] + 1,
             "child depth must be parent depth + 1");
      ensure(overlay.topology().has_edge(id, up),
             "hierarchy edge not in overlay");
      const auto& siblings = downstream_[up.value()];
      ensure(std::find(siblings.begin(), siblings.end(), id) !=
                 siblings.end(),
             "parent does not list child as downstream");
    }
    for (PeerId child : downstream_[p]) {
      ensure(is_member(child) && upstream_[child.value()] == id,
             "downstream peer does not point back");
    }
  }
  ensure(reachable == num_members_, "member count mismatch");
}

Hierarchy build_bfs_hierarchy(const Overlay& overlay, PeerId root) {
  return build_bfs_hierarchy(
      overlay, root, std::vector<bool>(overlay.num_peers(), true));
}

Hierarchy build_bfs_hierarchy(const Overlay& overlay, PeerId root,
                              const std::vector<bool>& participant) {
  const std::uint32_t n = overlay.num_peers();
  require(participant.size() == n, "participant mask size mismatch");
  require(root.value() < n && overlay.is_alive(root), "root must be alive");
  require(participant[root.value()], "root must participate");

  std::vector<std::uint32_t> depth(n, kInfiniteDepth);
  std::vector<PeerId> upstream(n, PeerId(0));
  std::vector<std::vector<PeerId>> downstream(n);
  std::vector<PeerId> host(n);
  for (std::uint32_t p = 0; p < n; ++p) host[p] = PeerId(p);

  // BFS over the participant-induced alive subgraph. Neighbor iteration is
  // in adjacency order, so the construction is deterministic.
  std::queue<PeerId> frontier;
  depth[root.value()] = 0;
  upstream[root.value()] = root;
  frontier.push(root);
  while (!frontier.empty()) {
    const PeerId p = frontier.front();
    frontier.pop();
    for (PeerId q : overlay.neighbors(p)) {
      if (!overlay.is_alive(q) || !participant[q.value()]) continue;
      if (depth[q.value()] != kInfiniteDepth) continue;
      depth[q.value()] = depth[p.value()] + 1;
      upstream[q.value()] = p;
      downstream[p.value()].push_back(q);
      frontier.push(q);
    }
  }

  // Attach every alive non-member (non-participant, or participant demoted
  // because unreachable) to the nearest member: multi-source BFS from all
  // members over the alive overlay, ties resolved by visiting order (member
  // with smaller id enqueued first).
  std::vector<PeerId> nearest(n, PeerId(0));
  std::vector<bool> visited(n, false);
  std::queue<PeerId> hosts_frontier;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (depth[p] != kInfiniteDepth) {
      visited[p] = true;
      nearest[p] = PeerId(p);
      hosts_frontier.push(PeerId(p));
    }
  }
  while (!hosts_frontier.empty()) {
    const PeerId p = hosts_frontier.front();
    hosts_frontier.pop();
    for (PeerId q : overlay.neighbors(p)) {
      if (!overlay.is_alive(q) || visited[q.value()]) continue;
      visited[q.value()] = true;
      nearest[q.value()] = nearest[p.value()];
      hosts_frontier.push(q);
    }
  }
  for (std::uint32_t p = 0; p < n; ++p) {
    if (depth[p] == kInfiniteDepth && overlay.is_alive(PeerId(p))) {
      ensure(visited[p],
             "alive peer cannot reach any hierarchy member; overlay is "
             "disconnected");
      host[p] = nearest[p];
    }
  }

  return Hierarchy(root, std::move(depth), std::move(upstream),
                   std::move(downstream), std::move(host));
}

std::vector<bool> select_stable_peers(const std::vector<double>& uptime,
                                      double fraction, PeerId root) {
  require(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  const auto n = static_cast<std::uint32_t>(uptime.size());
  require(root.value() < n, "root out of range");
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return uptime[a] > uptime[b];
                   });
  auto count = static_cast<std::uint32_t>(
      static_cast<double>(n) * fraction);
  count = std::max(count, 1u);
  std::vector<bool> participant(n, false);
  for (std::uint32_t i = 0; i < count; ++i) participant[order[i]] = true;
  participant[root.value()] = true;
  return participant;
}

}  // namespace nf::agg
