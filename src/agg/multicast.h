// Top-down dissemination over a hierarchy (paper Algorithm 2, line 1).
//
// The root propagates a payload down the hierarchy: each member forwards a
// copy to every downstream neighbor and invokes a per-peer handler. Used to
// disseminate the heavy item-group identifiers before candidate
// verification; the charged size is the modelled wire size of the payload
// (sg bytes per heavy group id), not the in-memory size.
//
// MulticastPhase is the session-runtime component (net/session.h). Its
// payload may be set mid-run — the pipelined netFilter only knows the heavy
// set when the filtering convergecast completes at the root — and each
// peer's handler fires the moment the copy reaches it, which is exactly the
// per-peer trigger that lets the next phase start there without a global
// barrier. Multicast is the classic standalone protocol, now a thin shim.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/session.h"
#include "obs/context.h"

namespace nf::agg {

/// Shard-safe: per-peer receipt flags live in a byte arena and the reach
/// count is a commutative atomic. Typed messages (net::TypedPhase<T>): a
/// payload type error fails at compile time.
template <typename T>
// Legacy object-payload path; flat counterpart: FlatMulticast
// (agg/flat_phases.h).
class MulticastPhase final : public net::TypedPhase<T> {  // nf-lint: nf-flat-payload-ok
 public:
  /// Runs at every member (including the root) exactly once, when the
  /// payload reaches that peer.
  using ReceiveFn = std::function<void(net::PhaseContext&, const T&)>;

  MulticastPhase(const Hierarchy& hierarchy, net::TrafficCategory category,
                 ReceiveFn on_receive, obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        on_receive_(std::move(on_receive)),
        obs_(obs),
        received_(hierarchy.num_peers(), false) {}

  /// Installs the payload and its modelled wire size. Must happen before
  /// the phase opens at the root — either up front, or from an earlier
  /// phase's callback (the root's shard) right before open_phase().
  void set_payload(T payload, std::uint64_t wire_bytes) {
    payload_ = std::move(payload);
    wire_bytes_ = wire_bytes;
    has_payload_ = true;
  }

  void on_start(net::PhaseContext& ctx) override {
    if (ctx.self() != hierarchy_.root()) return;
    ensure(has_payload_, "multicast opened at root without a payload");
    deliver(ctx, payload_);
  }

  [[nodiscard]] bool done() const override {
    return num_received() >= hierarchy_.num_members();
  }

  [[nodiscard]] bool complete() const { return done(); }

  /// Number of members that have received the payload so far.
  [[nodiscard]] std::uint32_t num_received() const {
    return num_received_.load(std::memory_order_relaxed);
  }

 protected:
  void on_payload(net::PhaseContext& ctx, T&& msg, PeerId /*from*/) override {
    ensure(!received_[ctx.self().value()], "duplicate multicast delivery");
    deliver(ctx, msg);
  }

 private:
  void deliver(net::PhaseContext& ctx, const T& payload) {
    const PeerId p = ctx.self();
    received_[p.value()] = true;
    num_received_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(ctx, payload);
    const auto& downstream = hierarchy_.downstream(p);
    if (obs_ != nullptr && !downstream.empty()) {
      obs_->registry.counter("multicast/forwards").add(downstream.size());
      obs_->tracer.record(obs::EventKind::kFanout, "multicast.fanout",
                          p.value(), downstream.size());
    }
    // Each forwarded copy descends from the arrival (or root trigger) that
    // reached this peer; ctx.cause() is that lineage id.
    const obs::LineageId parent = ctx.cause();
    for (PeerId child : downstream) {
      this->send(ctx, child, category_, wire_bytes_, T(payload),
                 std::span<const obs::LineageId>(&parent, 1));
    }
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  ReceiveFn on_receive_;
  obs::Context* obs_;
  T payload_{};
  std::uint64_t wire_bytes_ = 0;
  bool has_payload_ = false;
  PeerArena<bool> received_;
  std::atomic<std::uint32_t> num_received_{0};
};

/// Standalone run-to-completion multicast with the classic callback shape;
/// wraps one MulticastPhase in a single anonymous session.
template <typename T>
class Multicast final : public net::Protocol {
 public:
  /// `on_receive` runs at every member (including the root) exactly once.
  using ReceiveFn = std::function<void(PeerId, const T&)>;

  Multicast(const Hierarchy& hierarchy, net::TrafficCategory category,
            T payload, std::uint64_t wire_bytes, ReceiveFn on_receive,
            obs::Context* obs = nullptr)
      : phase_(
            hierarchy, category,
            [fn = std::move(on_receive)](net::PhaseContext& ctx,
                                         const T& value) {
              fn(ctx.self(), value);
            },
            obs),
        mux_(obs) {
    phase_.set_payload(std::move(payload), wire_bytes);
    const net::SessionId sid = mux_.add_session();
    net::PhaseOptions opts;
    opts.start = net::PhaseStart::kAllPeers;
    mux_.add_phase(sid, phase_, opts);
  }

  void on_run_start(const net::Overlay& overlay) override {
    mux_.on_run_start(overlay);
  }
  void on_round_begin(std::uint64_t round) override {
    mux_.on_round_begin(round);
  }
  void on_round(net::Context& ctx) override { mux_.on_round(ctx); }
  void on_message(net::Context& ctx, net::Envelope&& env) override {
    mux_.on_message(ctx, std::move(env));
  }
  void on_run_end() override { mux_.on_run_end(); }
  [[nodiscard]] bool active() const override { return mux_.active(); }

  [[nodiscard]] bool complete() const { return phase_.complete(); }
  [[nodiscard]] std::uint32_t num_received() const {
    return phase_.num_received();
  }

 private:
  MulticastPhase<T> phase_;
  net::SessionMux mux_;
};

}  // namespace nf::agg
