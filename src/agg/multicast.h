// Top-down dissemination over a hierarchy (paper Algorithm 2, line 1).
//
// The root propagates a payload down the hierarchy: each member forwards a
// copy to every downstream neighbor and invokes a per-peer handler. Used to
// disseminate the heavy item-group identifiers before candidate
// verification; the charged size is the modelled wire size of the payload
// (sg bytes per heavy group id), not the in-memory size.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"
#include "net/engine.h"
#include "obs/context.h"

namespace nf::agg {

/// Shard-safe: per-peer receipt flags live in a byte arena and the reach
/// count is a commutative atomic.
template <typename T>
class Multicast final : public net::Protocol {
 public:
  /// `on_receive` runs at every member (including the root) exactly once.
  using ReceiveFn = std::function<void(PeerId, const T&)>;

  Multicast(const Hierarchy& hierarchy, net::TrafficCategory category,
            T payload, std::uint64_t wire_bytes, ReceiveFn on_receive,
            obs::Context* obs = nullptr)
      : hierarchy_(hierarchy),
        category_(category),
        payload_(std::move(payload)),
        wire_bytes_(wire_bytes),
        on_receive_(std::move(on_receive)),
        obs_(obs),
        received_(hierarchy.num_peers(), false) {}

  void on_round(net::Context& ctx) override {
    const PeerId p = ctx.self();
    if (p != hierarchy_.root() || received_[p.value()]) return;
    deliver(ctx, p, payload_);
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    const PeerId p = ctx.self();
    ensure(!received_[p.value()], "duplicate multicast delivery");
    const T* payload = std::any_cast<T>(&env.payload);
    ensure(payload != nullptr, "multicast payload type mismatch");
    deliver(ctx, p, *payload);
  }

  [[nodiscard]] bool active() const override {
    return num_received() < hierarchy_.num_members();
  }

  [[nodiscard]] bool complete() const { return !active(); }

  /// Number of members that have received the payload so far.
  [[nodiscard]] std::uint32_t num_received() const {
    return num_received_.load(std::memory_order_relaxed);
  }

 private:
  void deliver(net::Context& ctx, PeerId p, const T& payload) {
    received_[p.value()] = true;
    num_received_.fetch_add(1, std::memory_order_relaxed);
    on_receive_(p, payload);
    const auto& downstream = hierarchy_.downstream(p);
    if (obs_ != nullptr && !downstream.empty()) {
      obs_->registry.counter("multicast/forwards").add(downstream.size());
      obs_->tracer.record(obs::EventKind::kFanout, "multicast.fanout",
                          p.value(), downstream.size());
    }
    for (PeerId child : downstream) {
      ctx.send(child, category_, wire_bytes_, std::any(payload));
    }
  }

  const Hierarchy& hierarchy_;
  net::TrafficCategory category_;
  T payload_;
  std::uint64_t wire_bytes_;
  ReceiveFn on_receive_;
  obs::Context* obs_;
  PeerArena<bool> received_;
  std::atomic<std::uint32_t> num_received_{0};
};

}  // namespace nf::agg
