// Hierarchy maintenance: heartbeats with DEPTH, and repair on churn
// (paper §III-A.3).
//
// Deployed P2P systems already exchange periodic heartbeats; netFilter
// piggybacks a DEPTH counter on them. Repair follows the paper:
//
//  * A peer that misses its upstream neighbor's heartbeats for
//    `timeout_rounds` declares it gone, sets its own depth to infinity and
//    recursively informs its downstream neighbors to do the same (ORPHAN).
//  * A peer at infinite depth that hears a heartbeat from a neighbor at
//    finite depth d re-enters the hierarchy at depth d+1 with that neighbor
//    as its upstream (ATTACH notifies the new parent; DETACH releases a
//    previous parent that is still alive).
//  * A newly joined peer starts at infinite depth and attaches the same way.
//
// The paper's protocol as literally stated is vulnerable to
// count-to-infinity: two orphaned peers can adopt each other's stale finite
// depths and ratchet upward forever (the same pathology as distance-vector
// routing). We harden it the way DSDV/AODV do: the root stamps every
// heartbeat with a monotonically increasing SEQUENCE number, a peer only
// refreshes or adopts depth information carrying a *newer* sequence than it
// already holds, and a peer whose sequence stops advancing for
// `stale_rounds` concludes it is cut off and goes to infinite depth. A
// cycle cannot mint new sequence numbers — only the root can — so stale
// information dies out and repair always converges while the alive overlay
// remains connected.
//
// The protocol is fully decentralized: each peer only touches its own
// state and what heartbeats tell it about neighbors. `snapshot()` exports
// the stabilized tree for the aggregation protocols and `stabilized()`
// checks the structural invariants from the outside (test oracle only —
// peers never read each other's state).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/ids.h"
#include "net/engine.h"

namespace nf::agg {

class HierarchyMaintenance final : public net::Protocol {
 public:
  struct Config {
    /// Modelled size of one heartbeat: sender id + DEPTH + SEQ.
    std::uint32_t heartbeat_bytes = 12;
    /// Modelled size of an ORPHAN/ATTACH/DETACH control message.
    std::uint32_t control_bytes = 4;
    /// Rounds without an upstream heartbeat before declaring it gone.
    std::uint32_t timeout_rounds = 3;
    /// Rounds without a sequence advance before concluding we are cut off
    /// (count-to-infinity breaker). Must exceed timeout_rounds.
    std::uint32_t stale_rounds = 6;
  };

  HierarchyMaintenance(const Hierarchy& initial, Config config);

  void on_round(net::Context& ctx) override;
  void on_message(net::Context& ctx, net::Envelope&& env) override;

  /// Maintenance never quiesces on its own; the driver decides how many
  /// rounds to run it for.
  [[nodiscard]] bool active() const override { return false; }

  /// Exports the current tree. Peers whose parent chain does not reach the
  /// root (mid-repair) are exported as non-members hosted by their nearest
  /// member.
  [[nodiscard]] Hierarchy snapshot(const net::Overlay& overlay) const;

  /// True iff every alive peer is in the tree with a consistent depth and
  /// an alive upstream whose chain reaches the root.
  [[nodiscard]] bool stabilized(const net::Overlay& overlay) const;

  [[nodiscard]] PeerId root() const { return root_; }

  /// Peer's current DEPTH counter (kInfiniteDepth while orphaned).
  [[nodiscard]] std::uint32_t depth(PeerId p) const {
    return state_[p.value()].depth;
  }

 private:
  struct Heartbeat {
    std::uint64_t seq;
    std::uint32_t depth;
  };
  struct Orphan {};
  struct Attach {};
  struct Detach {};

  struct PeerState {
    std::uint32_t depth = kInfiniteDepth;
    std::optional<PeerId> upstream;
    std::vector<PeerId> downstream;
    std::uint64_t seq = 0;
    std::int64_t seq_advanced_at = 0;
    // last round a heartbeat arrived from each overlay neighbor; indexed in
    // parallel with Overlay::neighbors(p). -1 means never.
    std::vector<std::int64_t> last_heard;
    bool ever_ticked = false;
  };

  void become_orphan(net::Context& ctx, PeerState& st);
  void adopt(net::Context& ctx, PeerState& st, PeerId parent,
             const Heartbeat& hb);
  static void remove_downstream(PeerState& st, PeerId child);

  PeerId root_;
  Config config_;
  // Shard-safe by message-passing discipline: a peer's callbacks write only
  // its own slot; cross-peer effects (ATTACH/DETACH) travel as messages.
  PeerArena<PeerState> state_;
};

}  // namespace nf::agg
