// Root selection policies (paper §III-A.1).
//
// "This designated peer could be a randomly selected peer, the most stable
// peer, or a peer that is close to the center of the network. In this
// study, we choose a peer randomly as the root node and leave other
// options for future exploration." — explored here:
//
//   kRandom     — the paper's choice.
//   kMostStable — the peer with the longest uptime (it also anchors the
//                 stable-peer recruitment of §III-A).
//   kCenter     — a peer of (approximately) minimum eccentricity: BFS from
//                 a few probes finds a far pair, and the midpoint of their
//                 shortest path lands near the graph center. A central root
//                 halves the hierarchy height, which shortens every phase
//                 and tightens the naive bound (Formula 2 scales with h).
//
// bench/ablation_root measures height and costs under each policy.
#pragma once

#include <cstdint>
#include <span>

#include "common/ids.h"
#include "common/rng.h"
#include "net/overlay.h"

namespace nf::agg {

enum class RootPolicy : std::uint8_t { kRandom, kMostStable, kCenter };

/// Picks a root among the alive peers. `uptime` is only consulted for
/// kMostStable (may be empty otherwise); `rng` only for kRandom and the
/// kCenter probes.
[[nodiscard]] PeerId select_root(const net::Overlay& overlay,
                                 RootPolicy policy,
                                 std::span<const double> uptime, Rng& rng);

/// Eccentricity of `p` over the alive overlay: max BFS distance to any
/// reachable alive peer.
[[nodiscard]] std::uint32_t eccentricity(const net::Overlay& overlay,
                                         PeerId p);

}  // namespace nf::agg
