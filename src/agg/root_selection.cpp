#include "agg/root_selection.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.h"

namespace nf::agg {

namespace {

/// BFS distances from `start` over the alive overlay (kInfiniteDepth for
/// unreachable peers).
std::vector<std::uint32_t> distances(const net::Overlay& overlay,
                                     PeerId start) {
  std::vector<std::uint32_t> dist(overlay.num_peers(), kInfiniteDepth);
  std::queue<PeerId> frontier;
  dist[start.value()] = 0;
  frontier.push(start);
  while (!frontier.empty()) {
    const PeerId p = frontier.front();
    frontier.pop();
    for (PeerId q : overlay.neighbors(p)) {
      if (!overlay.is_alive(q) || dist[q.value()] != kInfiniteDepth) {
        continue;
      }
      dist[q.value()] = dist[p.value()] + 1;
      frontier.push(q);
    }
  }
  return dist;
}

PeerId farthest(const std::vector<std::uint32_t>& dist) {
  std::uint32_t best = 0;
  std::uint32_t best_d = 0;
  for (std::uint32_t p = 0; p < dist.size(); ++p) {
    if (dist[p] != kInfiniteDepth && dist[p] >= best_d) {
      best_d = dist[p];
      best = p;
    }
  }
  return PeerId(best);
}

}  // namespace

std::uint32_t eccentricity(const net::Overlay& overlay, PeerId p) {
  require(overlay.is_alive(p), "peer must be alive");
  const auto dist = distances(overlay, p);
  std::uint32_t ecc = 0;
  for (std::uint32_t q = 0; q < dist.size(); ++q) {
    if (dist[q] != kInfiniteDepth) ecc = std::max(ecc, dist[q]);
  }
  return ecc;
}

PeerId select_root(const net::Overlay& overlay, RootPolicy policy,
                   std::span<const double> uptime, Rng& rng) {
  require(overlay.num_alive() > 0, "no alive peers");
  switch (policy) {
    case RootPolicy::kRandom: {
      while (true) {
        const PeerId cand(
            static_cast<std::uint32_t>(rng.below(overlay.num_peers())));
        if (overlay.is_alive(cand)) return cand;
      }
    }
    case RootPolicy::kMostStable: {
      require(uptime.size() == overlay.num_peers(),
              "kMostStable needs one uptime per peer");
      PeerId best(0);
      double best_up = -1.0;
      for (std::uint32_t p = 0; p < overlay.num_peers(); ++p) {
        if (overlay.is_alive(PeerId(p)) && uptime[p] > best_up) {
          best_up = uptime[p];
          best = PeerId(p);
        }
      }
      return best;
    }
    case RootPolicy::kCenter: {
      // Double-sweep heuristic: from a random alive probe, find the
      // farthest peer u; from u, find the farthest peer w and the
      // distances to everyone. The peer minimizing max(d(u,.), d(w,.))
      // approximates the center of the u-w "diameter" path.
      PeerId probe(0);
      do {
        probe = PeerId(
            static_cast<std::uint32_t>(rng.below(overlay.num_peers())));
      } while (!overlay.is_alive(probe));
      const PeerId u = farthest(distances(overlay, probe));
      const auto du = distances(overlay, u);
      const PeerId w = farthest(du);
      const auto dw = distances(overlay, w);
      PeerId best = probe;
      std::uint32_t best_score = kInfiniteDepth;
      for (std::uint32_t p = 0; p < overlay.num_peers(); ++p) {
        if (!overlay.is_alive(PeerId(p)) || du[p] == kInfiniteDepth ||
            dw[p] == kInfiniteDepth) {
          continue;
        }
        const std::uint32_t score = std::max(du[p], dw[p]);
        if (score < best_score) {
          best_score = score;
          best = PeerId(p);
        }
      }
      return best;
    }
  }
  throw InvalidArgument("unknown root policy");
}

}  // namespace nf::agg
