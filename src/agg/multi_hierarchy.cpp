#include "agg/multi_hierarchy.h"

#include <algorithm>

#include "common/error.h"

namespace nf::agg {

MultiHierarchy MultiHierarchy::build(const net::Overlay& overlay,
                                     const std::vector<PeerId>& roots) {
  require(!roots.empty(), "need at least one root");
  std::vector<PeerId> sorted = roots;
  std::sort(sorted.begin(), sorted.end());
  require(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
          "duplicate root");
  MultiHierarchy out;
  out.hierarchies_.reserve(roots.size());
  for (PeerId root : roots) {
    out.hierarchies_.push_back(build_bfs_hierarchy(overlay, root));
  }
  return out;
}

MultiHierarchy MultiHierarchy::build_random(const net::Overlay& overlay,
                                            std::uint32_t replicas,
                                            Rng& rng) {
  require(replicas >= 1 && replicas <= overlay.num_alive(),
          "replica count out of range");
  // Membership via linear scan of the (small) root list: same accept/reject
  // sequence as a set-based check, so existing seeds reproduce.
  std::vector<PeerId> roots;
  while (roots.size() < replicas) {
    const PeerId cand(static_cast<std::uint32_t>(
        rng.below(overlay.num_peers())));
    if (!overlay.is_alive(cand) ||
        std::find(roots.begin(), roots.end(), cand) != roots.end()) {
      continue;
    }
    roots.push_back(cand);
  }
  return build(overlay, roots);
}

const Hierarchy& MultiHierarchy::at(std::size_t i) const {
  require(i < hierarchies_.size(), "hierarchy index out of range");
  return hierarchies_[i];
}

const Hierarchy& MultiHierarchy::surviving(
    const net::Overlay& overlay) const {
  for (const auto& h : hierarchies_) {
    if (overlay.is_alive(h.root())) return h;
  }
  throw ProtocolError("every replicated hierarchy root is dead");
}

}  // namespace nf::agg
