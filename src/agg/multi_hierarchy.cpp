#include "agg/multi_hierarchy.h"

#include <unordered_set>

#include "common/error.h"

namespace nf::agg {

MultiHierarchy MultiHierarchy::build(const net::Overlay& overlay,
                                     const std::vector<PeerId>& roots) {
  require(!roots.empty(), "need at least one root");
  std::unordered_set<PeerId> seen;
  MultiHierarchy out;
  out.hierarchies_.reserve(roots.size());
  for (PeerId root : roots) {
    require(seen.insert(root).second, "duplicate root");
    out.hierarchies_.push_back(build_bfs_hierarchy(overlay, root));
  }
  return out;
}

MultiHierarchy MultiHierarchy::build_random(const net::Overlay& overlay,
                                            std::uint32_t replicas,
                                            Rng& rng) {
  require(replicas >= 1 && replicas <= overlay.num_alive(),
          "replica count out of range");
  std::unordered_set<PeerId> chosen;
  std::vector<PeerId> roots;
  while (roots.size() < replicas) {
    const PeerId cand(static_cast<std::uint32_t>(
        rng.below(overlay.num_peers())));
    if (!overlay.is_alive(cand) || !chosen.insert(cand).second) continue;
    roots.push_back(cand);
  }
  return build(overlay, roots);
}

const Hierarchy& MultiHierarchy::at(std::size_t i) const {
  require(i < hierarchies_.size(), "hierarchy index out of range");
  return hierarchies_[i];
}

const Hierarchy& MultiHierarchy::surviving(
    const net::Overlay& overlay) const {
  for (const auto& h : hierarchies_) {
    if (overlay.is_alive(h.root())) return h;
  }
  throw ProtocolError("every replicated hierarchy root is dead");
}

}  // namespace nf::agg
