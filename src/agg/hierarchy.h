// BFS hierarchy over the overlay (paper §III-A.1).
//
// Aggregate computation in netFilter runs over a breadth-first spanning
// hierarchy rooted at a designated peer: every participating peer sits at
// depth = shortest-path distance (in overlay hops) from the root, its
// upstream neighbor is the overlay neighbor it was discovered through, and
// its downstream neighbors are the peers it discovered.
//
// Only *stable* peers participate (paper: peers online longest); each
// non-participating peer attaches to its nearest participant and reports its
// local item set there ("host report"). In the paper's evaluation every peer
// participates, which is the default here too.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/overlay.h"

namespace nf::agg {

using net::Overlay;

/// Immutable snapshot of a hierarchy. Produced by `build_bfs_hierarchy` or
/// exported from a running `HierarchyMaintenance` protocol after repair.
class Hierarchy {
 public:
  Hierarchy(PeerId root, std::vector<std::uint32_t> depth,
            std::vector<PeerId> upstream,
            std::vector<std::vector<PeerId>> downstream,
            std::vector<PeerId> host);

  [[nodiscard]] PeerId root() const { return root_; }
  [[nodiscard]] std::uint32_t num_peers() const {
    return static_cast<std::uint32_t>(depth_.size());
  }

  /// True if the peer participates in the hierarchy (is a member).
  [[nodiscard]] bool is_member(PeerId p) const {
    return depth_[p.value()] != kInfiniteDepth;
  }
  [[nodiscard]] std::uint32_t num_members() const { return num_members_; }

  /// Depth of a member peer (0 for the root).
  [[nodiscard]] std::uint32_t depth(PeerId p) const;

  /// Upstream (parent) of a member peer; the root's upstream is itself.
  [[nodiscard]] PeerId upstream(PeerId p) const;

  [[nodiscard]] const std::vector<PeerId>& downstream(PeerId p) const;

  [[nodiscard]] bool is_leaf(PeerId p) const {
    return is_member(p) && downstream(p).empty();
  }

  /// For a non-member: the member it reports its local item set to.
  /// For members: the peer itself.
  [[nodiscard]] PeerId host(PeerId p) const { return host_[p.value()]; }

  /// Height h: number of levels (max member depth + 1), the `h` of the
  /// paper's naive cost bound (Formula 2).
  [[nodiscard]] std::uint32_t height() const { return height_; }

  /// All member peers, deepest first — the order in which a synchronous
  /// bottom-up pass can be evaluated sequentially.
  [[nodiscard]] std::vector<PeerId> members_deepest_first() const;

  /// Average number of downstream neighbors over internal member peers
  /// (the paper's `b`).
  [[nodiscard]] double avg_fanout() const;

  /// Checks structural invariants: parent/child symmetry, child depth =
  /// parent depth + 1, hierarchy edges are overlay edges, spanning (every
  /// alive peer is a member or hosted by an alive member), acyclic.
  /// Throws ProtocolError on violation.
  void validate(const Overlay& overlay) const;

 private:
  PeerId root_;
  std::vector<std::uint32_t> depth_;
  std::vector<PeerId> upstream_;
  std::vector<std::vector<PeerId>> downstream_;
  std::vector<PeerId> host_;
  std::uint32_t num_members_{0};
  std::uint32_t height_{0};
};

/// Builds the BFS hierarchy over all alive peers, rooted at `root`.
[[nodiscard]] Hierarchy build_bfs_hierarchy(const Overlay& overlay,
                                            PeerId root);

/// Builds the BFS hierarchy over the alive peers marked in `participant`
/// (root must participate). Participants unreachable through other
/// participants are demoted to non-participants. Every alive
/// non-participant is hosted by its nearest participant (BFS over the full
/// overlay, ties broken by smaller peer id).
[[nodiscard]] Hierarchy build_bfs_hierarchy(
    const Overlay& overlay, PeerId root,
    const std::vector<bool>& participant);

/// Selects the `fraction` most stable peers as participants given per-peer
/// uptimes; the root is always included. Ties broken by smaller peer id.
[[nodiscard]] std::vector<bool> select_stable_peers(
    const std::vector<double>& uptime, double fraction, PeerId root);

}  // namespace nf::agg
