#include "agg/sampling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "agg/hll.h"
#include "common/error.h"
#include "common/rng.h"

namespace nf::agg {

SampleEstimates sample_estimates(const Hierarchy& hierarchy,
                                 const ItemSource& items, Value v_total,
                                 Value threshold,
                                 const SamplingConfig& config,
                                 net::TrafficMeter* meter) {
  require(config.num_branches > 0, "need at least one branch");
  require(config.items_per_peer > 0, "need at least one item per peer");
  require(v_total > 0, "v_total must be positive");
  Rng rng(config.seed);

  // 1. Walk `num_branches` random root-to-leaf branches; the sampled peer
  // set is the union of the peers on them. Collected with duplicates, then
  // sort+unique: branch walks never consult the set, so the draw sequence
  // is unchanged and the result is order-deterministic.
  std::vector<PeerId> sampled;
  for (std::uint32_t b = 0; b < config.num_branches; ++b) {
    PeerId cur = hierarchy.root();
    sampled.push_back(cur);
    while (!hierarchy.downstream(cur).empty()) {
      const auto& kids = hierarchy.downstream(cur);
      cur = kids[rng.below(kids.size())];
      sampled.push_back(cur);
    }
  }
  std::sort(sampled.begin(), sampled.end());
  sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());

  // 2. Each sampled peer picks `items_per_peer` random distinct local items.
  // Duplicates across peers are allowed here; step 3 sorts and uniques.
  std::vector<ItemId> picked;
  double mean_local_distinct = 0.0;
  std::vector<std::size_t> idx;
  for (PeerId p : sampled) {
    const auto& local = items.local_items(p);
    mean_local_distinct += static_cast<double>(local.size());
    if (local.size() <= config.items_per_peer) {
      for (const auto& [id, v] : local) picked.push_back(id);
      continue;
    }
    // Floyd's algorithm over indices keeps the pick O(k); membership is a
    // linear scan of at most items_per_peer entries. On collision j is not
    // yet present (j grows monotonically), so the k picks stay distinct.
    idx.clear();
    const std::size_t n = local.size();
    for (std::size_t j = n - config.items_per_peer; j < n; ++j) {
      std::size_t t = rng.below(j + 1);
      if (std::find(idx.begin(), idx.end(), t) != idx.end()) t = j;
      idx.push_back(t);
    }
    for (std::size_t i : idx) {
      picked.push_back((local.begin() + static_cast<std::ptrdiff_t>(i))->first);
    }
  }
  mean_local_distinct /= static_cast<double>(sampled.size());

  // 3. Aggregate the picked items over the sampled peers only: ṽᵢ.
  std::vector<ItemId> picked_sorted = std::move(picked);
  std::sort(picked_sorted.begin(), picked_sorted.end());
  picked_sorted.erase(
      std::unique(picked_sorted.begin(), picked_sorted.end()),
      picked_sorted.end());
  std::vector<double> tilde(picked_sorted.size(), 0.0);
  for (PeerId p : sampled) {
    const auto& local = items.local_items(p);
    for (std::size_t i = 0; i < picked_sorted.size(); ++i) {
      tilde[i] += static_cast<double>(local.value_of(picked_sorted[i]));
    }
    if (meter != nullptr) {
      // Each sampled peer propagates one <id, value> pair per sampled item
      // up its branch (merged along the way, so charged once per peer).
      const std::uint64_t bytes =
          picked_sorted.size() *
          (std::uint64_t{config.aggregate_bytes} + config.item_id_bytes);
      meter->record(p, net::TrafficCategory::kSampling, bytes);
    }
  }

  // 4. Scale to global-value estimates: v̂ᵢ = ṽᵢ · v / Σⱼ ṽⱼ (§IV-E).
  double tilde_sum = 0.0;
  for (double t : tilde) tilde_sum += t;
  ensure(tilde_sum > 0.0, "sampled peers hold no items");
  const double scale = static_cast<double>(v_total) / tilde_sum;

  SampleEstimates out;
  out.num_sampled_peers = static_cast<std::uint32_t>(sampled.size());
  out.num_sampled_items = static_cast<std::uint32_t>(picked_sorted.size());

  // 5. Formulae 7 and 8, Horvitz-Thompson weighted. The raw sample is
  // size-biased — an item sitting on many peers enters the sample far more
  // often than a rare one — so plain means over sampled items overshoot
  // badly for skewed data. Weighting each sampled item by 1/π̂ₓ (its
  // estimated inclusion probability, computed below from its estimated
  // popularity) undoes the bias; the same weights drive the r̂ estimator.
  const double s = static_cast<double>(sampled.size());
  const double n_peers_d = static_cast<double>(items.num_peers());
  const double pick_rate =
      std::min(1.0, static_cast<double>(config.items_per_peer) /
                        std::max(1.0, mean_local_distinct));
  const auto inclusion_probability = [&](double v_hat) {
    // E[#peers holding x] under random scatter of v̂ₓ unit instances.
    const double peers_x =
        n_peers_d * (1.0 - std::pow(1.0 - 1.0 / n_peers_d, v_hat));
    return 1.0 - std::pow(1.0 - pick_rate * peers_x / n_peers_d, s);
  };

  double wsum_all = 0.0, wval_all = 0.0;
  double wsum_light = 0.0, wval_light = 0.0;
  double r_hat = 0.0;
  for (double t : tilde) {
    const double v_hat = t * scale;
    const double pi = std::max(inclusion_probability(v_hat), 1e-12);
    const double w = 1.0 / pi;
    wsum_all += w;
    wval_all += w * v_hat;
    if (v_hat < static_cast<double>(threshold)) {
      wsum_light += w;
      wval_light += w * v_hat;
    } else {
      r_hat += w;  // step 7 folded in: HT count of heavy items
    }
  }
  out.v_bar = wsum_all > 0.0 ? wval_all / wsum_all : 0.0;
  out.v_bar_light = wsum_light > 0.0 ? wval_light / wsum_light : 0.0;
  out.r_hat = r_hat;

  // 6. n̂ via HLL merged up the hierarchy.
  const std::uint32_t num_peers = items.num_peers();
  if (config.estimate_n) {
    HyperLogLog merged(config.hll_precision);
    for (std::uint32_t p = 0; p < num_peers; ++p) {
      if (!hierarchy.is_member(PeerId(p))) continue;
      HyperLogLog sketch(config.hll_precision);
      for (const auto& [id, v] : items.local_items(PeerId(p))) {
        sketch.insert(id);
      }
      if (meter != nullptr && PeerId(p) != hierarchy.root()) {
        meter->record(PeerId(p), net::TrafficCategory::kSampling,
                      sketch.wire_bytes());
      }
      merged.merge(sketch);
    }
    out.n_hat = merged.estimate();
  }

  return out;
}

}  // namespace nf::agg
