#include "agg/gossip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/error.h"

namespace nf::agg {

PushSumGossip::PushSumGossip(std::vector<std::vector<double>> initial,
                             Config config)
    : config_(config), x_(std::move(initial)) {
  require(!x_.empty(), "push-sum needs at least one peer");
  dimension_ = x_[0u].size();
  for (const auto& v : x_) {
    require(v.size() == dimension_, "all initial vectors must share one size");
  }
  num_peers_ = x_.size();
  count_.assign(num_peers_, 0.0);
  count_[0u] = 1.0;
  w_.assign(num_peers_, 1.0);
  rng_ = fork_streams(config_.seed, num_peers_);
  pending_parents_.assign(num_peers_, {});
}

void PushSumGossip::on_round_begin(std::uint64_t /*round*/) {
  ++rounds_done_;
  if (config_.obs != nullptr) {
    config_.obs->tracer.record(obs::EventKind::kGossipRound, "gossip.round",
                               obs::kNoPeer, rounds_done_);
  }
}

void PushSumGossip::on_round(net::Context& ctx) {
  const PeerId self = ctx.self();
  if (rounds_done_ > config_.rounds) return;

  auto& x = x_[self.value()];
  auto& cnt = count_[self.value()];
  auto& w = w_[self.value()];

  const auto targets = ctx.overlay().alive_neighbors(self);
  if (targets.empty()) return;
  const PeerId to =
      targets[rng_[self.value()].below(targets.size())];

  Share out;
  out.x.resize(dimension_);
  for (std::size_t i = 0; i < dimension_; ++i) {
    out.x[i] = x[i] * 0.5;
    x[i] *= 0.5;
  }
  out.count = cnt * 0.5;
  cnt *= 0.5;
  out.w = w * 0.5;
  w *= 0.5;

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(dimension_ + 1) *
          config_.bytes_per_coordinate +
      config_.weight_bytes;
  if (config_.obs != nullptr) {
    config_.obs->registry.counter("gossip/shares").add(1);
    config_.obs->registry.histogram("gossip/share_bytes").observe(bytes);
  }
  // The outgoing share carries half of everything merged so far; every
  // share received since the last send is a causal parent.
  std::vector<obs::LineageId>& parents = pending_parents_[self.value()];
  ctx.send(to, net::TrafficCategory::kGossip, bytes, std::any(std::move(out)),
           std::span<const obs::LineageId>(parents));
  parents.clear();
}

void PushSumGossip::on_message(net::Context& ctx, net::Envelope&& env) {
  const Share* share = std::any_cast<Share>(&env.payload);
  ensure(share != nullptr, "gossip payload type mismatch");
  const PeerId self = ctx.self();
  pending_parents_[self.value()].push_back(ctx.cause());
  auto& x = x_[self.value()];
  for (std::size_t i = 0; i < dimension_; ++i) x[i] += share->x[i];
  count_[self.value()] += share->count;
  w_[self.value()] += share->w;
}

double PushSumGossip::estimate_sum(PeerId p, std::size_t i) const {
  require(i < dimension_, "coordinate out of range");
  const double cnt = count_[p.value()];
  // x/w is the average estimate; count/w estimates 1/N; their ratio is the
  // sum. Peers that have not yet mixed with peer 0 have count == 0.
  if (cnt <= 0.0) return 0.0;
  return x_[p.value()][i] / cnt;
}

double PushSumGossip::total_mass(std::size_t i) const {
  require(i < dimension_, "coordinate out of range");
  double sum = 0.0;
  for (std::uint32_t p = 0; p < num_peers_; ++p) sum += x_[p][i];
  return sum;
}

double PushSumGossip::relative_spread(std::size_t i) const {
  require(i < dimension_, "coordinate out of range");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (std::uint32_t p = 0; p < num_peers_; ++p) {
    const double e = estimate_sum(PeerId(p), i);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  if (hi == 0.0 && lo == 0.0) return 0.0;
  const double mid = 0.5 * (hi + lo);
  return mid != 0.0 ? (hi - lo) / std::abs(mid)
                    : std::numeric_limits<double>::infinity();
}

}  // namespace nf::agg
