// Replicated hierarchies for root fault tolerance (paper §III-A.1).
//
// A single hierarchy dies with its root. The paper suggests constructing
// multiple hierarchies (after [13]); we build k BFS hierarchies with
// distinct roots over the same overlay. A netFilter request runs on the
// primary; if its root fails mid-run, the driver re-runs on the first
// replica whose root is still alive. Aggregation traffic is only spent on
// the hierarchy in use, so the replicas cost only their (ignored, per the
// paper's model) formation traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/hierarchy.h"
#include "common/rng.h"

namespace nf::agg {

class MultiHierarchy {
 public:
  /// Builds one hierarchy per root, in order. Roots must be distinct and
  /// alive.
  static MultiHierarchy build(const net::Overlay& overlay,
                              const std::vector<PeerId>& roots);

  /// Builds `replicas` hierarchies at uniformly random distinct roots.
  static MultiHierarchy build_random(const net::Overlay& overlay,
                                     std::uint32_t replicas, Rng& rng);

  [[nodiscard]] std::size_t size() const { return hierarchies_.size(); }
  [[nodiscard]] const Hierarchy& at(std::size_t i) const;
  [[nodiscard]] const Hierarchy& primary() const { return at(0); }

  /// First hierarchy whose root is currently alive. Throws ProtocolError if
  /// every root is dead.
  [[nodiscard]] const Hierarchy& surviving(const net::Overlay& overlay) const;

 private:
  std::vector<Hierarchy> hierarchies_;
};

}  // namespace nf::agg
