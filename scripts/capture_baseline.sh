#!/usr/bin/env bash
# Captures BENCH_baseline.json — the committed fig5 --quick reference that
# CI diffs against via `nf-inspect fig5.json BENCH_baseline.json`.
#
# The per-peer *_cost columns are deterministic (fixed seed, flat wire
# model), so any diff is a real behavior change. Re-run this script and
# commit the result whenever such a change is intentional.
#
# --trace-cap=16 keeps the committed trace section tiny; it does not affect
# the results rows.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${BUILD_DIR:-build}
bench="$build_dir/bench/fig5_filter_size"

if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake -B $build_dir -S . && cmake --build $build_dir)" >&2
  exit 1
fi

"$bench" --quick --trace-cap=16 --json=BENCH_baseline.json
echo "captured BENCH_baseline.json"
