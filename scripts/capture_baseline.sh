#!/usr/bin/env bash
# Captures the committed --quick references CI diffs against via nf-inspect:
#   BENCH_baseline.json         — fig5_filter_size (filtering-heavy)
#   BENCH_fig7_baseline.json    — fig7_skewness (convergecast-heavy)
#   BENCH_million_baseline.json — fig7_million_peers (flat payloads at
#                                 N=10^5 peers; full 10^6 without --quick)
#   BENCH_congestion_baseline.json — fig_congestion (link-capacity sweep;
#                                 `nf-inspect congestion` diffs its
#                                 queueing scalars in CI)
#
# The per-peer *_cost columns are deterministic (fixed seed, flat wire
# model), so any diff is a real behavior change. Re-run this script and
# commit the results whenever such a change is intentional.
#
# --trace-cap=16 / --lineage-cap=16 keep the committed trace and lineage
# sections tiny; they do not affect the results rows.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${BUILD_DIR:-build}

# Keep in sync with obs::kSchemaVersion (src/obs/export.h): a baseline
# captured from a stale build would make every CI diff nonsense, so fail
# loudly instead of committing it.
expected_schema=7

capture() {
  local bench="$build_dir/bench/$1" out="$2"
  if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake -B $build_dir -S . && cmake --build $build_dir)" >&2
    exit 1
  fi
  "$bench" --quick --trace-cap=16 --lineage-cap=16 --json="$out"
  python3 - "$out" "$expected_schema" <<'EOF'
import json, sys
path, expected = sys.argv[1], int(sys.argv[2])
got = json.load(open(path)).get('schema_version')
if got != expected:
    sys.exit(f'error: {path} has schema_version {got}, expected {expected} '
             '(stale build? rebuild before capturing)')
EOF
  echo "captured $out (schema_version $expected_schema)"
}

capture fig5_filter_size BENCH_baseline.json
capture fig7_skewness BENCH_fig7_baseline.json
capture fig7_million_peers BENCH_million_baseline.json
capture fig_congestion BENCH_congestion_baseline.json
