#!/usr/bin/env python3
"""Baseline gate for clang-tidy, mirroring nf-lint's workflow.

Parses a run-clang-tidy report and fails on any diagnostic whose key is not
in the committed baseline (tools/clang_tidy_baseline.txt). Keys are
`check|path|message` — line and column are deliberately dropped so the
baseline survives unrelated edits, and duplicate diagnostics from a header
included by many TUs collapse to one key. Hard errors (`error:`) always
fail, baseline or not.

Usage:
  clang_tidy_gate.py --baseline FILE [--update] [--strict] [REPORT]

REPORT defaults to stdin. --update rewrites the baseline from the current
report instead of gating (burn it back down to empty, as with nf-lint).
--strict also fails on stale baseline entries that no longer match any
diagnostic; the default only warns, so a fixed warning cannot break CI.

Exit: 0 clean, 1 new findings / errors (/ stale under --strict), 2 usage.
"""

import argparse
import re
import sys

# /abs/or/rel/path.h:12:3: warning: message text [check-a,check-b]
DIAG = re.compile(
    r"^(?P<path>[^\s:][^:]*?):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<kind>warning|error):\s+(?P<msg>.*?)\s+\[(?P<checks>[\w\-.,]+)\]\s*$"
)

# Repo roots a diagnostic path is trimmed back to, so keys are identical
# whether clang-tidy printed absolute or build-relative paths.
ROOTS = ("src/", "tools/", "tests/", "bench/", "examples/")


def repo_path(path: str) -> str:
    path = path.replace("\\", "/")
    for root in ROOTS:
        idx = path.find("/" + root)
        if idx >= 0:
            return path[idx + 1 :]
        if path.startswith(root):
            return path
    return path


def keys_of(report_lines):
    """Yield (key, kind) per diagnostic; one key per listed check id."""
    for line in report_lines:
        m = DIAG.match(line.rstrip("\n"))
        if not m:
            continue
        path = repo_path(m.group("path"))
        msg = " ".join(m.group("msg").split())
        for check in m.group("checks").split(","):
            yield f"{check}|{path}|{msg}", m.group("kind")


def load_baseline(path):
    entries = set()
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.rstrip("\n")
                if not line or line.startswith("#"):
                    continue
                entries.add(line)
    except FileNotFoundError:
        pass
    return entries


def main() -> int:
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--strict", action="store_true")
    ap.add_argument("report", nargs="?")
    args = ap.parse_args()

    if args.report:
        with open(args.report, encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = sys.stdin.readlines()

    seen = {}  # key -> kind (error wins over warning)
    for key, kind in keys_of(lines):
        if seen.get(key) != "error":
            seen[key] = kind

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            fh.write(
                "# clang-tidy baseline: one `check|path|message` key per\n"
                "# accepted warning. CI fails on any diagnostic NOT listed\n"
                "# here; burn this file down to empty. Regenerate:\n"
                "#   run-clang-tidy -p build -quiet 'src/.*\\.cpp$' \\\n"
                "#     | python3 scripts/clang_tidy_gate.py \\\n"
                "#         --baseline tools/clang_tidy_baseline.txt --update\n"
            )
            for key in sorted(seen):
                fh.write(key + "\n")
        print(f"clang-tidy-gate: wrote {len(seen)} entries to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    errors = sorted(k for k, kind in seen.items() if kind == "error")
    new = sorted(k for k in seen if k not in baseline and k not in errors)
    stale = sorted(baseline - set(seen))

    for key in errors:
        print(f"clang-tidy-gate: ERROR (always gated): {key}")
    for key in new:
        print(f"clang-tidy-gate: new warning not in baseline: {key}")
    for key in stale:
        print(
            f"clang-tidy-gate: stale baseline entry (fixed? delete it): {key}"
        )

    fail = bool(errors or new or (args.strict and stale))
    print(
        f"clang-tidy-gate: {len(seen)} diagnostics, {len(errors)} errors, "
        f"{len(new)} new vs baseline, {len(stale)} stale"
        f"{' (strict)' if args.strict else ''}"
    )
    return 1 if fail else 0


if __name__ == "__main__":
    sys.exit(main())
