#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every paper table/figure.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    case "$b" in *.cmake) continue;; esac
    echo "===== $(basename "$b") ====="
    "$b" "$@"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. See EXPERIMENTS.md for the paper-vs-measured record."
